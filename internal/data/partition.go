package data

import (
	"fmt"
	"math/rand"
)

// ConfusionLevel indexes the paper's non-IID difficulty ladder
// (Fig. 11): IID, then C1–C3 with increasing class overlap between
// devices and increasing label noise.
type ConfusionLevel int

// Confusion levels, in increasing difficulty.
const (
	IID ConfusionLevel = iota + 1
	C1
	C2
	C3
)

// String implements fmt.Stringer.
func (l ConfusionLevel) String() string {
	switch l {
	case IID:
		return "IID"
	case C1:
		return "C1"
	case C2:
		return "C2"
	case C3:
		return "C3"
	default:
		return fmt.Sprintf("ConfusionLevel(%d)", int(l))
	}
}

// PartitionSpec controls how device shards are drawn.
type PartitionSpec struct {
	Devices        int
	SamplesPerDev  int
	ClassesPerDev  int // classes visible to each device in non-IID modes
	Level          ConfusionLevel
	DistinctGroups int // number of distinct class groups across devices (0 = per-device draw)
}

// Partition draws one shard per device from gen according to spec.
//
// IID: every device samples all classes. C1–C3: each device (or device
// group) sees a subset of classes; as the level rises, subsets are drawn
// with more cross-device mixing and the generator's label noise is
// raised, which is how the paper's "increased confusion" is realized.
func Partition(gen *Generator, spec PartitionSpec, rng *rand.Rand) ([]*Dataset, error) {
	if spec.Devices <= 0 || spec.SamplesPerDev <= 0 {
		return nil, fmt.Errorf("data: bad partition spec %+v", spec)
	}
	numClasses := gen.Spec.NumClasses
	classesPer := spec.ClassesPerDev
	if classesPer <= 0 || classesPer > numClasses {
		classesPer = numClasses
	}

	noise, mix := levelKnobs(spec.Level)
	noisyGen := *gen
	noisySpec := gen.Spec
	noisySpec.LabelNoise = noise
	noisyGen.Spec = noisySpec

	groupClassSets := buildGroups(spec, numClasses, classesPer, mix, rng)

	shards := make([]*Dataset, spec.Devices)
	for dev := range shards {
		classes := groupClassSets[dev%len(groupClassSets)]
		if spec.Level == IID {
			classes = nil // all classes
		}
		shards[dev] = noisyGen.Sample(spec.SamplesPerDev, classes, rng)
	}
	return shards, nil
}

// levelKnobs maps a confusion level to (label noise, class-mixing
// fraction).
func levelKnobs(l ConfusionLevel) (noise, mix float64) {
	switch l {
	case C1:
		return 0.02, 0.1
	case C2:
		return 0.06, 0.3
	case C3:
		return 0.12, 0.5
	default: // IID
		return 0, 0
	}
}

func buildGroups(spec PartitionSpec, numClasses, classesPer int, mix float64, rng *rand.Rand) [][]int {
	groups := spec.DistinctGroups
	if groups <= 0 {
		groups = spec.Devices
	}
	base := rng.Perm(numClasses)
	sets := make([][]int, groups)
	for g := range sets {
		// contiguous slice of the permutation → disjoint-ish groups
		start := (g * classesPer) % numClasses
		set := make([]int, 0, classesPer)
		for i := 0; i < classesPer; i++ {
			set = append(set, base[(start+i)%numClasses])
		}
		// mix in random classes from anywhere to raise confusion
		for i := range set {
			if rng.Float64() < mix {
				set[i] = rng.Intn(numClasses)
			}
		}
		sets[g] = set
	}
	return sets
}
