package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testSpec() Spec {
	s := CIFAR100Like()
	s.NumClasses = 20
	s.NumSuper = 4
	return s
}

func TestGeneratorDeterministicMeans(t *testing.T) {
	g1, err := NewGenerator(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 20; c += 7 {
		m1, m2 := g1.ClassMean(c), g2.ClassMean(c)
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("class %d mean differs between generators", c)
			}
		}
	}
}

func TestSampleRespectsClasses(t *testing.T) {
	g, err := NewGenerator(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	classes := []int{3, 7, 11}
	ds := g.Sample(200, classes, rng)
	allowed := map[int]bool{3: true, 7: true, 11: true}
	for _, y := range ds.Y {
		if !allowed[y] {
			t.Fatalf("label %d outside allowed classes (no label noise configured)", y)
		}
	}
	if ds.Len() != 200 || ds.Dim != 64 {
		t.Fatalf("bad dataset shape: %d × %d", ds.Len(), ds.Dim)
	}
}

func TestLabelNoise(t *testing.T) {
	spec := testSpec()
	spec.LabelNoise = 1.0 // every label resampled uniformly
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Sample(500, []int{0}, rand.New(rand.NewSource(2)))
	var offClass int
	for _, y := range ds.Y {
		if y != 0 {
			offClass++
		}
	}
	if offClass < 400 {
		t.Fatalf("full label noise produced only %d/500 off-class labels", offClass)
	}
}

func TestSuperclassGeometry(t *testing.T) {
	g, err := NewGenerator(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Classes 0..4 share superclass 0; class 5 is in superclass 1.
	sameSuper := dist(g.ClassMean(0), g.ClassMean(1))
	crossSuper := dist(g.ClassMean(0), g.ClassMean(5))
	if sameSuper >= crossSuper {
		t.Fatalf("within-super distance %.2f ≥ cross-super %.2f", sameSuper, crossSuper)
	}
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestClassHistogramSumsToOne(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	ds := g.Sample(123, nil, rand.New(rand.NewSource(3)))
	var sum float64
	for _, v := range ds.ClassHistogram() {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram sums to %v", sum)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	ds := g.Sample(100, nil, rand.New(rand.NewSource(4)))
	train, test := ds.Split(0.8, rand.New(rand.NewSource(5)))
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
}

func TestPartitionIIDCoversAllClasses(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	shards, err := Partition(g, PartitionSpec{
		Devices: 3, SamplesPerDev: 400, Level: IID,
	}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("got %d shards", len(shards))
	}
	seen := map[int]bool{}
	for _, y := range shards[0].Y {
		seen[y] = true
	}
	if len(seen) < 15 {
		t.Fatalf("IID shard covers only %d/20 classes", len(seen))
	}
}

func TestPartitionNonIIDRestrictsClasses(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	shards, err := Partition(g, PartitionSpec{
		Devices: 4, SamplesPerDev: 200, ClassesPerDev: 4, Level: C1, DistinctGroups: 2,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i, shard := range shards {
		seen := map[int]bool{}
		for _, y := range shard.Y {
			seen[y] = true
		}
		// 4 base classes, plus some mixing and label noise.
		if len(seen) > 10 {
			t.Fatalf("C1 shard %d covers %d classes, expected a restricted set", i, len(seen))
		}
	}
}

func TestPartitionConfusionIncreasesEntropy(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	ent := func(level ConfusionLevel) float64 {
		shards, err := Partition(g, PartitionSpec{
			Devices: 4, SamplesPerDev: 400, ClassesPerDev: 4, Level: level, DistinctGroups: 2,
		}, rand.New(rand.NewSource(8)))
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, sh := range shards {
			for _, p := range sh.ClassHistogram() {
				if p > 0 {
					total -= p * math.Log(p)
				}
			}
		}
		return total
	}
	if e1, e3 := ent(C1), ent(C3); e3 <= e1 {
		t.Fatalf("C3 entropy %.3f not above C1 %.3f", e3, e1)
	}
}

func TestFeatureExtractorDeterministic(t *testing.T) {
	f1 := NewFeatureExtractor(8, 4, 42)
	f2 := NewFeatureExtractor(8, 4, 42)
	x := []float64{1, -1, 0.5, 2, -2, 0, 3, -3}
	a, b := f1.Extract(x), f2.Extract(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same features")
		}
		if a[i] < -1 || a[i] > 1 {
			t.Fatalf("tanh feature out of range: %v", a[i])
		}
	}
}

func TestFeatureExtractorPreservesNeighborhoods(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := NewFeatureExtractor(16, 8, 1)
		x := make([]float64, 16)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		near := append([]float64(nil), x...)
		near[0] += 0.01
		far := make([]float64, 16)
		for i := range far {
			far[i] = x[i] + 3*rng.NormFloat64()
		}
		return dist(fx.Extract(x), fx.Extract(near)) <= dist(fx.Extract(x), fx.Extract(far))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeBounds(t *testing.T) {
	g, _ := NewGenerator(testSpec())
	ds := g.Sample(50, nil, rand.New(rand.NewSource(9)))
	p := Probe(ds, 10, rand.New(rand.NewSource(10)))
	if p.Len() != 10 {
		t.Fatalf("probe size %d", p.Len())
	}
	if Probe(ds, 100, rand.New(rand.NewSource(11))).Len() != 50 {
		t.Fatal("oversized probe should return the full set")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := testSpec()
	bad.NumSuper = 3 // 20 % 3 != 0
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("expected validation error")
	}
	bad2 := testSpec()
	bad2.LabelNoise = 1.5
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected label-noise validation error")
	}
}
