package data

import (
	"fmt"
	"math/rand"
)

// TextSpec describes a synthetic token-classification dataset: each
// class has a small set of motif tokens that appear far more often than
// background vocabulary, so sequence classifiers must aggregate
// evidence across positions.
type TextSpec struct {
	Name       string
	NumClasses int
	VocabSize  int
	SeqLen     int
	// MotifTokens per class; motifs are disjoint across classes.
	MotifTokens int
	// MotifProb is the probability each position draws from the class
	// motif instead of the background distribution.
	MotifProb float64
}

// DefaultTextSpec returns a small, learnable-but-nontrivial spec.
func DefaultTextSpec() TextSpec {
	return TextSpec{
		Name:        "text-motifs",
		NumClasses:  6,
		VocabSize:   64,
		SeqLen:      12,
		MotifTokens: 3,
		MotifProb:   0.35,
	}
}

// Validate reports spec errors.
func (s TextSpec) Validate() error {
	switch {
	case s.NumClasses <= 0 || s.VocabSize <= 0 || s.SeqLen <= 0 || s.MotifTokens <= 0:
		return fmt.Errorf("data: non-positive text spec field %+v", s)
	case s.NumClasses*s.MotifTokens > s.VocabSize:
		return fmt.Errorf("data: %d classes × %d motifs exceed vocab %d",
			s.NumClasses, s.MotifTokens, s.VocabSize)
	case s.MotifProb < 0 || s.MotifProb > 1:
		return fmt.Errorf("data: motif prob %v outside [0,1]", s.MotifProb)
	default:
		return nil
	}
}

// TextDataset is a labeled token-sequence collection.
type TextDataset struct {
	Spec   TextSpec
	Tokens [][]int
	Y      []int
}

// Len returns the number of sequences.
func (d *TextDataset) Len() int { return len(d.Tokens) }

// GenerateText draws n labeled sequences: class c's motif tokens are
// c·MotifTokens .. (c+1)·MotifTokens−1; other positions draw uniformly
// from the full vocabulary.
func GenerateText(spec TextSpec, n int, rng *rand.Rand) (*TextDataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ds := &TextDataset{
		Spec:   spec,
		Tokens: make([][]int, n),
		Y:      make([]int, n),
	}
	for i := 0; i < n; i++ {
		class := rng.Intn(spec.NumClasses)
		seq := make([]int, spec.SeqLen)
		for p := range seq {
			if rng.Float64() < spec.MotifProb {
				seq[p] = class*spec.MotifTokens + rng.Intn(spec.MotifTokens)
			} else {
				seq[p] = rng.Intn(spec.VocabSize)
			}
		}
		ds.Tokens[i] = seq
		ds.Y[i] = class
	}
	return ds, nil
}

// SplitText partitions d into train/test with the given train fraction.
func SplitText(d *TextDataset, frac float64, rng *rand.Rand) (train, test *TextDataset) {
	order := rng.Perm(d.Len())
	cut := int(frac * float64(d.Len()))
	pick := func(idx []int) *TextDataset {
		out := &TextDataset{Spec: d.Spec, Tokens: make([][]int, len(idx)), Y: make([]int, len(idx))}
		for i, j := range idx {
			out.Tokens[i] = d.Tokens[j]
			out.Y[i] = d.Y[j]
		}
		return out
	}
	return pick(order[:cut]), pick(order[cut:])
}
