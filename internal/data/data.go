// Package data provides the synthetic datasets that stand in for
// CIFAR-100 and Stanford Cars, plus the IID / non-IID partitioners used
// to emulate heterogeneous device data.
//
// Samples are class-conditional Gaussian mixtures with a two-level class
// hierarchy (superclasses containing fine classes). The hierarchy gives
// the generator controllable inter-class geometry: classes in the same
// superclass overlap more, so distribution distances between device
// shards are meaningful and "confusion levels" (the paper's C1–C3) can
// be dialed in by shrinking class separation and adding label noise.
package data

import (
	"fmt"
	"math/rand"
)

// Spec describes a synthetic dataset family.
type Spec struct {
	Name         string
	NumClasses   int
	NumSuper     int     // superclasses; must divide NumClasses
	Dim          int     // feature dimension of each sample
	SuperSep     float64 // distance scale between superclass means
	ClassSep     float64 // distance scale between class means within a superclass
	WithinStd    float64 // per-class sample standard deviation
	LabelNoise   float64 // probability a label is replaced uniformly at random
	SeedOverride int64   // class-mean seed; 0 derives it from Name
}

// CIFAR100Like returns the spec standing in for CIFAR-100
// (100 classes, 20 superclasses).
func CIFAR100Like() Spec {
	return Spec{
		Name:       "cifar100-like",
		NumClasses: 100,
		NumSuper:   20,
		Dim:        64,
		SuperSep:   3.0,
		ClassSep:   1.2,
		WithinStd:  0.9,
	}
}

// CarsLike returns the spec standing in for Stanford Cars: more classes,
// finer-grained (smaller class separation), i.e. a harder dataset.
func CarsLike() Spec {
	return Spec{
		Name:       "cars-like",
		NumClasses: 196,
		NumSuper:   28,
		Dim:        64,
		SuperSep:   2.4,
		ClassSep:   0.7,
		WithinStd:  0.9,
	}
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	switch {
	case s.NumClasses <= 0 || s.Dim <= 0:
		return fmt.Errorf("data: non-positive classes/dim in %q", s.Name)
	case s.NumSuper <= 0 || s.NumClasses%s.NumSuper != 0:
		return fmt.Errorf("data: %d classes not divisible by %d superclasses", s.NumClasses, s.NumSuper)
	case s.LabelNoise < 0 || s.LabelNoise > 1:
		return fmt.Errorf("data: label noise %v outside [0,1]", s.LabelNoise)
	default:
		return nil
	}
}

// Dataset is a labeled sample collection.
type Dataset struct {
	Name       string
	NumClasses int
	Dim        int
	X          [][]float64
	Y          []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Subset returns a dataset view containing the given indices (shares
// sample storage with d).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Name: d.Name, NumClasses: d.NumClasses, Dim: d.Dim}
	out.X = make([][]float64, len(idx))
	out.Y = make([]int, len(idx))
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// ClassHistogram returns the per-class sample counts normalized to sum
// to 1; an empty dataset returns all zeros.
func (d *Dataset) ClassHistogram() []float64 {
	h := make([]float64, d.NumClasses)
	if len(d.Y) == 0 {
		return h
	}
	inv := 1 / float64(len(d.Y))
	for _, y := range d.Y {
		h[y] += inv
	}
	return h
}

// Split partitions d into a training set of fraction frac and the
// remainder, shuffled by rng.
func (d *Dataset) Split(frac float64, rng *rand.Rand) (train, test *Dataset) {
	order := rng.Perm(d.Len())
	cut := int(frac * float64(d.Len()))
	return d.Subset(order[:cut]), d.Subset(order[cut:])
}

// Generator produces samples for one Spec with fixed class means, so
// shards generated for different devices come from the same underlying
// population.
type Generator struct {
	Spec       Spec
	classMeans [][]float64
}

// NewGenerator builds the class-mean geometry for spec.
func NewGenerator(spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	seed := spec.SeedOverride
	if seed == 0 {
		seed = int64(len(spec.Name))*7919 + 12345
		for _, r := range spec.Name {
			seed = seed*31 + int64(r)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	perSuper := spec.NumClasses / spec.NumSuper
	superMeans := make([][]float64, spec.NumSuper)
	for s := range superMeans {
		superMeans[s] = randVec(rng, spec.Dim, spec.SuperSep)
	}
	g := &Generator{Spec: spec}
	g.classMeans = make([][]float64, spec.NumClasses)
	for c := range g.classMeans {
		mean := append([]float64(nil), superMeans[c/perSuper]...)
		for j, v := range randVec(rng, spec.Dim, spec.ClassSep) {
			mean[j] += v
		}
		g.classMeans[c] = mean
	}
	return g, nil
}

// ClassMean returns the mean of class c (copy).
func (g *Generator) ClassMean(c int) []float64 {
	return append([]float64(nil), g.classMeans[c]...)
}

// Sample draws n samples from the given classes (uniformly across
// them), applying the spec's label noise.
func (g *Generator) Sample(n int, classes []int, rng *rand.Rand) *Dataset {
	if len(classes) == 0 {
		classes = make([]int, g.Spec.NumClasses)
		for c := range classes {
			classes[c] = c
		}
	}
	ds := &Dataset{
		Name:       g.Spec.Name,
		NumClasses: g.Spec.NumClasses,
		Dim:        g.Spec.Dim,
		X:          make([][]float64, n),
		Y:          make([]int, n),
	}
	for i := 0; i < n; i++ {
		c := classes[rng.Intn(len(classes))]
		x := append([]float64(nil), g.classMeans[c]...)
		for j := range x {
			x[j] += rng.NormFloat64() * g.Spec.WithinStd
		}
		label := c
		if g.Spec.LabelNoise > 0 && rng.Float64() < g.Spec.LabelNoise {
			label = rng.Intn(g.Spec.NumClasses)
		}
		ds.X[i] = x
		ds.Y[i] = label
	}
	return ds
}

func randVec(rng *rand.Rand, dim int, scale float64) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
	return v
}
