// Package wasserstein implements the distribution distances and the
// device-similarity matrix of ACME's Phase 2-2 (§III-D2, Eq. 19–20):
// exact 1-D p-Wasserstein distance, sliced Wasserstein for feature
// clouds, Jensen–Shannon divergence (the paper's comparison baseline),
// and the symmetrized, row-softmax-normalized similarity matrix Ŵ.
package wasserstein

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Distance1D returns the p-Wasserstein distance between two empirical
// 1-D distributions with the L1 ground metric: the order-statistics
// formula Wp = (mean |x₍ᵢ₎ − y₍ᵢ₎|ᵖ)^(1/p) after resampling both to a
// common quantile grid.
func Distance1D(xs, ys []float64, p float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 0
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	return distance1DSorted(a, b, p)
}

// distance1DSorted is Distance1D over already-sorted, non-empty
// samples. It is the allocation-free core shared with Sliced, whose
// projection loop sorts its scratch buffers in place.
func distance1DSorted(a, b []float64, p float64) float64 {
	if p <= 0 {
		p = 1
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var total float64
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / float64(n)
		d := math.Abs(quantile(a, q) - quantile(b, q))
		if p == 1 {
			total += d
		} else {
			total += math.Pow(d, p)
		}
	}
	if p == 1 {
		return total / float64(n)
	}
	return math.Pow(total/float64(n), 1/p)
}

// quantile returns the q-th empirical quantile of sorted samples.
func quantile(sorted []float64, q float64) float64 {
	pos := q*float64(len(sorted)) - 0.5
	if pos <= 0 {
		return sorted[0]
	}
	if pos >= float64(len(sorted)-1) {
		return sorted[len(sorted)-1]
	}
	lo := int(pos)
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Sliced computes the sliced p-Wasserstein distance between two sets of
// d-dimensional feature vectors: the average 1-D distance over
// numProjections random unit directions. It approximates the
// multivariate optimal-transport distance the paper computes between
// probe-shard feature distributions while staying O(n log n).
func Sliced(xs, ys [][]float64, p float64, numProjections int, rng *rand.Rand) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, fmt.Errorf("wasserstein: empty sample set")
	}
	dim := len(xs[0])
	if len(ys[0]) != dim {
		return 0, fmt.Errorf("wasserstein: dim %d vs %d", dim, len(ys[0]))
	}
	if numProjections <= 0 {
		numProjections = 32
	}
	var total float64
	px := make([]float64, len(xs))
	py := make([]float64, len(ys))
	dir := make([]float64, dim)
	for k := 0; k < numProjections; k++ {
		randUnitInto(rng, dir)
		for i, x := range xs {
			px[i] = dot(dir, x)
		}
		for i, y := range ys {
			py[i] = dot(dir, y)
		}
		// px/py are scratch: sort in place instead of copying per
		// projection as Distance1D would.
		sort.Float64s(px)
		sort.Float64s(py)
		total += distance1DSorted(px, py, p)
	}
	return total / float64(numProjections), nil
}

// JSDivergence returns the Jensen–Shannon divergence (base e) between
// two discrete distributions of equal length. Inputs are normalized
// defensively.
func JSDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("wasserstein: histogram length %d vs %d", len(p), len(q))
	}
	pn := normalize(p)
	qn := normalize(q)
	var js float64
	for i := range pn {
		m := 0.5 * (pn[i] + qn[i])
		js += 0.5*klTerm(pn[i], m) + 0.5*klTerm(qn[i], m)
	}
	return js, nil
}

// HistDistance1D returns the 1-Wasserstein distance between two discrete
// distributions over the integer support 0..n-1 (the CDF-difference
// formula). Used to compare label histograms.
func HistDistance1D(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("wasserstein: histogram length %d vs %d", len(p), len(q))
	}
	pn := normalize(p)
	qn := normalize(q)
	var cdfP, cdfQ, total float64
	for i := range pn {
		cdfP += pn[i]
		cdfQ += qn[i]
		total += math.Abs(cdfP - cdfQ)
	}
	return total, nil
}

// SimilarityRaw turns a pairwise distance matrix w̃ into the paper's
// symmetrized similarity W̄: wᵢⱼ = 1/(1+w̃ᵢⱼ) (Eq. 19) followed by the
// element-wise geometric-mean symmetrization W̄ = sqrt(W ∘ Wᵀ). This is
// the matrix the Fig. 10 heatmaps display.
func SimilarityRaw(dist [][]float64) ([][]float64, error) {
	n := len(dist)
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("wasserstein: distance matrix row %d has %d cols, want %d", i, len(dist[i]), n)
		}
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = 1 / (1 + dist[i][j])
		}
	}
	bar := make([][]float64, n)
	for i := range bar {
		bar[i] = make([]float64, n)
		for j := range bar[i] {
			bar[i][j] = math.Sqrt(w[i][j] * w[j][i])
		}
	}
	return bar, nil
}

// SimilarityFromDistances composes SimilarityRaw with the row-softmax
// normalization Ŵ[i,j] = exp(W̄ᵢⱼ)/Σₙ exp(W̄ᵢₙ) (Eq. 20), producing the
// row-stochastic aggregation weights.
func SimilarityFromDistances(dist [][]float64) ([][]float64, error) {
	bar, err := SimilarityRaw(dist)
	if err != nil {
		return nil, err
	}
	n := len(bar)
	// Row softmax.
	out := make([][]float64, n)
	for i := range bar {
		out[i] = make([]float64, n)
		var maxv float64 = math.Inf(-1)
		for _, v := range bar[i] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range bar[i] {
			e := math.Exp(v - maxv)
			out[i][j] = e
			sum += e
		}
		for j := range out[i] {
			out[i][j] /= sum
		}
	}
	return out, nil
}

func normalize(p []float64) []float64 {
	out := make([]float64, len(p))
	var sum float64
	for _, v := range p {
		if v > 0 {
			sum += v
		}
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(p))
		}
		return out
	}
	for i, v := range p {
		if v > 0 {
			out[i] = v / sum
		}
	}
	return out
}

func klTerm(p, m float64) float64 {
	if p <= 0 || m <= 0 {
		return 0
	}
	return p * math.Log(p/m)
}

// randUnitInto fills v with a uniformly random unit direction.
func randUnitInto(rng *rand.Rand, v []float64) {
	var norm float64
	for i := range v {
		v[i] = rng.NormFloat64()
		norm += v[i] * v[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= norm
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
