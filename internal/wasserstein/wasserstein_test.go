package wasserstein

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistance1DIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := Distance1D(xs, xs, 1); d > 1e-9 {
		t.Fatalf("W1(x,x)=%v", d)
	}
}

func TestDistance1DShift(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{2, 3, 4, 5}
	// Shifting a distribution by c moves W1 by exactly c.
	if d := Distance1D(xs, ys, 1); math.Abs(d-2) > 1e-9 {
		t.Fatalf("W1 of +2 shift = %v, want 2", d)
	}
}

func TestDistance1DSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 5+rng.Intn(20))
		ys := make([]float64, 5+rng.Intn(20))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for i := range ys {
			ys[i] = 1 + 2*rng.NormFloat64()
		}
		return math.Abs(Distance1D(xs, ys, 1)-Distance1D(ys, xs, 1)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistance1DTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func(mu float64) []float64 {
			v := make([]float64, 32)
			for i := range v {
				v[i] = mu + rng.NormFloat64()
			}
			return v
		}
		a, b, c := gen(0), gen(1), gen(3)
		ab := Distance1D(a, b, 1)
		bc := Distance1D(b, c, 1)
		ac := Distance1D(a, c, 1)
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSlicedSeparatesDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cloud := func(mu float64) [][]float64 {
		out := make([][]float64, 60)
		for i := range out {
			v := make([]float64, 8)
			for j := range v {
				v[j] = mu + rng.NormFloat64()
			}
			out[i] = v
		}
		return out
	}
	a1, a2, b := cloud(0), cloud(0), cloud(3)
	near, err := Sliced(a1, a2, 1, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	far, err := Sliced(a1, b, 1, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	if near >= far {
		t.Fatalf("near %.3f ≥ far %.3f", near, far)
	}
}

func TestSlicedEmptyInput(t *testing.T) {
	if _, err := Sliced(nil, [][]float64{{1}}, 1, 4, rand.New(rand.NewSource(2))); err == nil {
		t.Fatal("expected error on empty set")
	}
}

func TestJSDivergenceProperties(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0, 0.5, 0.5}
	js, err := JSDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if js <= 0 || js > math.Log(2)+1e-9 {
		t.Fatalf("JS=%v outside (0, ln2]", js)
	}
	self, _ := JSDivergence(p, p)
	if self > 1e-12 {
		t.Fatalf("JS(p,p)=%v", self)
	}
	sym1, _ := JSDivergence(p, q)
	sym2, _ := JSDivergence(q, p)
	if math.Abs(sym1-sym2) > 1e-12 {
		t.Fatal("JS must be symmetric")
	}
}

func TestJSDivergenceLengthMismatch(t *testing.T) {
	if _, err := JSDivergence([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestHistDistance1D(t *testing.T) {
	p := []float64{1, 0, 0}
	q := []float64{0, 0, 1}
	d, err := HistDistance1D(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// Moving all mass 2 bins costs 2 under the CDF formula.
	if math.Abs(d-2) > 1e-9 {
		t.Fatalf("hist W1 = %v want 2", d)
	}
}

func TestSimilarityFromDistancesRowStochastic(t *testing.T) {
	dist := [][]float64{
		{0, 1, 5},
		{1, 0, 4},
		{5, 4, 0},
	}
	sim, err := SimilarityFromDistances(dist)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range sim {
		var sum float64
		for _, v := range row {
			if v <= 0 {
				t.Fatalf("non-positive weight at row %d", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Closer pairs must get higher weights.
	if sim[0][1] <= sim[0][2] {
		t.Fatalf("closer device got smaller weight: %v vs %v", sim[0][1], sim[0][2])
	}
}

func TestSimilarityRawSymmetric(t *testing.T) {
	dist := [][]float64{
		{0, 2, 3},
		{2.5, 0, 1}, // deliberately asymmetric input
		{3, 1, 0},
	}
	raw, err := SimilarityRaw(dist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		for j := range raw {
			if math.Abs(raw[i][j]-raw[j][i]) > 1e-12 {
				t.Fatalf("W̄ not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestSimilarityBadShape(t *testing.T) {
	if _, err := SimilarityFromDistances([][]float64{{0, 1}}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := quantile(sorted, 0.5); math.Abs(q-5) > 1e-9 {
		t.Fatalf("median of {0,10} = %v", q)
	}
}
