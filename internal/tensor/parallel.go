package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package runs its large kernels on a reusable pool of worker
// goroutines. Work is always partitioned by output row-blocks so that
// every output element is written by exactly one goroutine and every
// per-element reduction runs in the same (ascending-k) order as the
// serial kernel: results are bitwise identical regardless of the
// parallelism setting, and seeded runs stay reproducible.

// parallelism holds the configured worker count; 0 means GOMAXPROCS.
var parallelism atomic.Int64

// Parallelism returns the number of goroutines large kernels may use.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the number of goroutines large kernels may use.
// n ≤ 0 restores the default (GOMAXPROCS). Safe to call concurrently
// with running kernels; in-flight calls keep their partitioning.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// minParallelFlops is the kernel cost (multiply-adds) below which
// dispatching to the pool costs more than it saves and the serial
// kernel runs instead. 64³ is roughly where a matmul reaches ~100µs
// of scalar work.
const minParallelFlops = 64 * 64 * 64

type blockTask struct {
	fn         func(start, end int)
	start, end int
	wg         *sync.WaitGroup
}

var (
	poolOnce sync.Once
	taskCh   chan blockTask
)

// startPool launches the package-level workers, sized to GOMAXPROCS at
// first use. The Parallelism knob controls how finely work is split,
// not the pool size, so lowering it never strands goroutines.
func startPool() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	taskCh = make(chan blockTask, 8*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range taskCh {
				t.fn(t.start, t.end)
				t.wg.Done()
			}
		}()
	}
}

// ParallelFor splits [0, n) into up to Parallelism() contiguous blocks
// and runs fn over each on the package worker pool — the exported
// entry point for callers with independent per-index work (e.g. the
// aggregate.Combiner folding one upload into every output accumulator).
// fn must only write state owned by its index range; partitioning is
// deterministic, so results are bitwise independent of the pool.
func ParallelFor(n int, fn func(start, end int)) { parallelFor(n, fn) }

// parallelFor splits [0, n) into up to Parallelism() contiguous blocks
// and runs fn over each. The caller executes the first block itself;
// the rest go to the worker pool, falling back to inline execution when
// the queue is full so nested calls cannot deadlock. fn must only write
// state owned by its row range.
func parallelFor(n int, fn func(start, end int)) {
	p := Parallelism()
	if p > n {
		p = n
	}
	if p <= 1 || n <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	poolOnce.Do(startPool)
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for s := chunk; s < n; s += chunk {
		e := s + chunk
		if e > n {
			e = n
		}
		wg.Add(1)
		select {
		case taskCh <- blockTask{fn, s, e, &wg}:
		default:
			fn(s, e)
			wg.Done()
		}
	}
	fn(0, chunk)
	wg.Wait()
}
