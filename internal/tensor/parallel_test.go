package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// withParallelism runs f under the given parallelism setting and
// restores the default afterwards.
func withParallelism(t *testing.T, n int, f func()) {
	t.Helper()
	SetParallelism(n)
	defer SetParallelism(0)
	f()
}

// bitwiseEqual reports exact (tolerance-zero) equality, the contract
// the parallel kernels promise relative to the serial ones.
func bitwiseEqual(t *testing.T, op string, serial, parallel *Matrix) {
	t.Helper()
	if serial.Rows != parallel.Rows || serial.Cols != parallel.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", op, serial.Rows, serial.Cols, parallel.Rows, parallel.Cols)
	}
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("%s: element %d differs: serial %v parallel %v", op, i, serial.Data[i], parallel.Data[i])
		}
	}
}

// equivalenceShapes covers non-divisible block sizes, degenerate rows
// and columns, and empty matrices.
var equivalenceShapes = []struct{ m, k, n int }{
	{64, 64, 64},  // exactly one block
	{65, 130, 67}, // every dimension straddles a block boundary
	{1, 300, 300}, // single output row
	{300, 300, 1}, // single output column
	{1, 1, 1},
	{128, 1, 128}, // inner dimension 1
	{0, 5, 7},     // empty output
	{5, 0, 7},     // empty inner dimension
	{7, 5, 0},
	{0, 0, 0},
	{97, 257, 65}, // prime-ish, larger than one block in k and j
}

func randomized(rng *rand.Rand, r, c int, sparsity float64) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		if rng.Float64() < sparsity {
			continue // keep zeros: exercises the zero-skip fast path
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatMulSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range equivalenceShapes {
		a := randomized(rng, sh.m, sh.k, 0.2)
		b := randomized(rng, sh.k, sh.n, 0.2)
		var serial, parallel *Matrix
		withParallelism(t, 1, func() { serial = MatMul(a, b) })
		withParallelism(t, 8, func() { parallel = MatMul(a, b) })
		bitwiseEqual(t, "matmul", serial, parallel)
	}
}

func TestMatMulTransASerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range equivalenceShapes {
		a := randomized(rng, sh.k, sh.m, 0.2) // aᵀ is m×k
		b := randomized(rng, sh.k, sh.n, 0.2)
		var serial, parallel *Matrix
		withParallelism(t, 1, func() { serial = MatMulTransA(a, b) })
		withParallelism(t, 8, func() { parallel = MatMulTransA(a, b) })
		bitwiseEqual(t, "matmul-transA", serial, parallel)
	}
}

func TestMatMulTransBSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range equivalenceShapes {
		a := randomized(rng, sh.m, sh.k, 0.2)
		b := randomized(rng, sh.n, sh.k, 0.2) // bᵀ is k×n
		var serial, parallel *Matrix
		withParallelism(t, 1, func() { serial = MatMulTransB(a, b) })
		withParallelism(t, 8, func() { parallel = MatMulTransB(a, b) })
		bitwiseEqual(t, "matmul-transB", serial, parallel)
	}
}

// TestMatMulEquivalenceRandomShapes fuzzes shapes around the serial
// fallback threshold and the block boundaries.
func TestMatMulEquivalenceRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		m := rng.Intn(200)
		k := rng.Intn(200)
		n := rng.Intn(200)
		a := randomized(rng, m, k, 0.3)
		b := randomized(rng, k, n, 0.3)
		var serial, parallel *Matrix
		withParallelism(t, 1, func() { serial = MatMul(a, b) })
		withParallelism(t, 7, func() { parallel = MatMul(a, b) })
		bitwiseEqual(t, "matmul", serial, parallel)
	}
}

func TestAccVariantsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomized(rng, 70, 90, 0)
	b := randomized(rng, 90, 80, 0)
	base := randomized(rng, 70, 80, 0)

	dst := base.Clone()
	MatMulAcc(dst, a, b)
	want := Add(base, MatMul(a, b))
	if !Equal(dst, want, 1e-12) {
		t.Fatal("MatMulAcc does not accumulate")
	}

	y := randomized(rng, 70, 80, 0)
	dstA := New(90, 80)
	dstA.Fill(1)
	MatMulTransAAcc(dstA, a, y) // aᵀ·y is 90×80
	wantA := MatMulTransA(a, y)
	for i := range wantA.Data {
		wantA.Data[i]++
	}
	if !Equal(dstA, wantA, 1e-12) {
		t.Fatal("MatMulTransAAcc does not accumulate")
	}

	c := randomized(rng, 80, 90, 0)
	dstB := New(70, 80)
	dstB.Fill(-2)
	MatMulTransBAcc(dstB, a, c)
	wantB := MatMulTransB(a, c)
	for i := range wantB.Data {
		wantB.Data[i] -= 2
	}
	if !Equal(dstB, wantB, 1e-12) {
		t.Fatal("MatMulTransBAcc does not accumulate")
	}
}

// TestParallelPoolRace hammers the worker pool from many goroutines at
// once; run with -race to check the pool hands each row block to
// exactly one writer.
func TestParallelPoolRace(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomized(rng, 96, 96, 0)
	b := randomized(rng, 96, 96, 0)
	var want *Matrix
	withParallelism(t, 1, func() { want = MatMul(a, b) })
	SetParallelism(8)
	defer SetParallelism(0)

	const goroutines = 16
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := New(96, 96)
			for i := 0; i < iters; i++ {
				MatMulInto(dst, a, b)
				for j := range dst.Data {
					if dst.Data[j] != want.Data[j] {
						errs <- "concurrent MatMulInto diverged from serial result"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestSetParallelismClamp(t *testing.T) {
	SetParallelism(-5)
	defer SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("Parallelism() = %d after negative set", Parallelism())
	}
}

func TestEnsure(t *testing.T) {
	m := New(3, 4)
	if Ensure(m, 3, 4) != m {
		t.Fatal("Ensure must reuse a matching matrix")
	}
	n := Ensure(m, 2, 4)
	if n == m || n.Rows != 2 || n.Cols != 4 {
		t.Fatal("Ensure must allocate on shape mismatch")
	}
	if z := Ensure(nil, 1, 1); z == nil || len(z.Data) != 1 {
		t.Fatal("Ensure must allocate for nil input")
	}
}

func TestFusedHelpers(t *testing.T) {
	x := FromSlice(2, 2, []float64{1, 2, 3, 4})
	y := FromSlice(2, 2, []float64{10, 20, 30, 40})
	AxpyRows(2, x, y)
	if !Equal(y, FromSlice(2, 2, []float64{12, 24, 36, 48}), 0) {
		t.Fatalf("AxpyRows: %v", y.Data)
	}

	v := []float64{1, 2}
	ScaleAddVec(3, v, []float64{10, 20})
	if v[0] != 13 || v[1] != 26 {
		t.Fatalf("ScaleAddVec: %v", v)
	}

	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(2, 3, []float64{1, 1, 1, 2, 2, 2})
	dots := DotRows(a, b, nil)
	if dots[0] != 6 || dots[1] != 30 {
		t.Fatalf("DotRows: %v", dots)
	}
	reuse := DotRows(a, b, dots)
	if &reuse[0] != &dots[0] {
		t.Fatal("DotRows must reuse a right-sized slice")
	}

	sums := []float64{1, 1, 1}
	a.SumRowsInto(sums)
	if sums[0] != 6 || sums[1] != 8 || sums[2] != 10 {
		t.Fatalf("SumRowsInto: %v", sums)
	}

	dst := New(2, 3)
	AddInto(dst, a, b)
	if !Equal(dst, Add(a, b), 0) {
		t.Fatal("AddInto mismatch")
	}
}
