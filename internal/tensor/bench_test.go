package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks compare the serial kernel (parallelism 1) against the
// pooled kernel at GOMAXPROCS across the sizes the training stack
// actually hits: 64 (header-scale), 256 (backbone-scale), 1024
// (stress / paper-scale surrogate).

func benchMatMul(b *testing.B, n, parallelism int) {
	SetParallelism(parallelism)
	defer SetParallelism(0)
	rng := rand.New(rand.NewSource(1))
	x := New(n, n)
	y := New(n, n)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	dst := New(n, n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("serial/%d", n), func(b *testing.B) { benchMatMul(b, n, 1) })
		b.Run(fmt.Sprintf("parallel/%d", n), func(b *testing.B) { benchMatMul(b, n, 0) })
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	for _, n := range []int{256, 1024} {
		for name, p := range map[string]int{"serial": 1, "parallel": 0} {
			b.Run(fmt.Sprintf("%s/%d", name, n), func(b *testing.B) {
				SetParallelism(p)
				defer SetParallelism(0)
				rng := rand.New(rand.NewSource(1))
				x := New(n, n)
				y := New(n, n)
				x.Randomize(rng, 1)
				y.Randomize(rng, 1)
				dst := New(n, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulTransAInto(dst, x, y)
				}
			})
		}
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	for _, n := range []int{256, 1024} {
		for name, p := range map[string]int{"serial": 1, "parallel": 0} {
			b.Run(fmt.Sprintf("%s/%d", name, n), func(b *testing.B) {
				SetParallelism(p)
				defer SetParallelism(0)
				rng := rand.New(rand.NewSource(1))
				x := New(n, n)
				y := New(n, n)
				x.Randomize(rng, 1)
				y.Randomize(rng, 1)
				dst := New(n, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulTransBInto(dst, x, y)
				}
			})
		}
	}
}
