package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("got %v want %v", got.Data, want.Data)
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(3, 4)
	a.Randomize(rng, 1)
	b := New(5, 4)
	b.Randomize(rng, 1)
	got := MatMulTransB(a, b)
	want := MatMul(a, b.Transpose())
	if !Equal(got, want, 1e-12) {
		t.Fatal("a·bᵀ mismatch")
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(4, 3)
	a.Randomize(rng, 1)
	b := New(4, 5)
	b.Randomize(rng, 1)
	got := MatMulTransA(a, b)
	want := MatMul(a.Transpose(), b)
	if !Equal(got, want, 1e-12) {
		t.Fatal("aᵀ·b mismatch")
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	m.SoftmaxRows()
	for i := 0; i < 2; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("row %d has out-of-range prob %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Large inputs must not overflow (row 1 is uniform).
	for _, v := range m.Row(1) {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("uniform row got %v", v)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		m := New(r, c)
		m.Randomize(rng, 1)
		return Equal(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMatMulDistributive checks the property a·(b+c) = a·b + a·c.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a := New(n, n)
		b := New(n, n)
		c := New(n, n)
		a.Randomize(rng, 1)
		b.Randomize(rng, 1)
		c.Randomize(rng, 1)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowAndMeanRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 5, 6, 7})
	mean := m.MeanRows()
	want := []float64{3, 4, 5}
	for i := range want {
		if math.Abs(mean[i]-want[i]) > 1e-12 {
			t.Fatalf("mean[%d]=%v want %v", i, mean[i], want[i])
		}
	}
	m.Row(0)[0] = 42
	if m.At(0, 0) != 42 {
		t.Fatal("Row must be a view")
	}
}

func TestAddRowVectorAndScale(t *testing.T) {
	m := New(2, 2)
	m.Fill(1)
	m.AddRowVector([]float64{1, 2})
	m.Scale(2)
	want := FromSlice(2, 2, []float64{4, 6, 4, 6})
	if !Equal(m, want, 0) {
		t.Fatalf("got %v", m.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestDotAndAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("dot=%v", got)
	}
	Axpy(2, x, y)
	want := []float64{6, 9, 12}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("axpy: %v", y)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestNormAndSub(t *testing.T) {
	a := FromSlice(1, 2, []float64{3, 4})
	if got := a.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("norm=%v", got)
	}
	d := Sub(a, a)
	if d.Norm() != 0 {
		t.Fatal("a-a should be zero")
	}
}

func TestHadamard(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	got := Hadamard(a, b)
	want := FromSlice(1, 3, []float64{4, 10, 18})
	if !Equal(got, want, 0) {
		t.Fatalf("got %v", got.Data)
	}
}
