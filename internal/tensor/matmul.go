package tensor

import "fmt"

// Cache block sizes, in float64 elements. A blockK×blockJ panel of b
// (128 KiB) sits comfortably in L2 while a blockJ-wide dst row segment
// (2 KiB) stays in L1 across the k sweep. Blocking only reorders which
// (i, j) cells are visited when; every per-element reduction still runs
// in ascending-k order, so blocked, serial, and parallel kernels produce
// bitwise-identical results.
const (
	blockK = 64
	blockJ = 256
)

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage.
func MatMulInto(dst, a, b *Matrix) {
	checkMatMul("matmul", dst, a.Rows, b.Cols, a.Cols, b.Rows)
	dst.Zero()
	matMulAcc(dst, a, b)
}

// MatMulAcc computes dst += a·b, reusing dst's storage.
func MatMulAcc(dst, a, b *Matrix) {
	checkMatMul("matmul", dst, a.Rows, b.Cols, a.Cols, b.Rows)
	matMulAcc(dst, a, b)
}

func matMulAcc(dst, a, b *Matrix) {
	if a.Rows*a.Cols*b.Cols >= minParallelFlops {
		parallelFor(a.Rows, func(i0, i1 int) { matMulRange(dst, a, b, i0, i1) })
		return
	}
	matMulRange(dst, a, b, 0, a.Rows)
}

// matMulRange accumulates rows [i0, i1) of a·b into dst.
func matMulRange(dst, a, b *Matrix, i0, i1 int) {
	for k0 := 0; k0 < a.Cols; k0 += blockK {
		k1 := k0 + blockK
		if k1 > a.Cols {
			k1 = a.Cols
		}
		for j0 := 0; j0 < b.Cols; j0 += blockJ {
			j1 := j0 + blockJ
			if j1 > b.Cols {
				j1 = b.Cols
			}
			for i := i0; i < i1; i++ {
				arow := a.Row(i)
				dseg := dst.Row(i)[j0:j1]
				for k := k0; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					bseg := b.Row(k)[j0:j1]
					for j, bv := range bseg {
						dseg[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulTransB returns a·bᵀ.
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ, reusing dst's storage.
func MatMulTransBInto(dst, a, b *Matrix) {
	checkMatMul("matmul-transB", dst, a.Rows, b.Rows, a.Cols, b.Cols)
	dst.Zero()
	matMulTransBAcc(dst, a, b)
}

// MatMulTransBAcc computes dst += a·bᵀ, reusing dst's storage.
func MatMulTransBAcc(dst, a, b *Matrix) {
	checkMatMul("matmul-transB", dst, a.Rows, b.Rows, a.Cols, b.Cols)
	matMulTransBAcc(dst, a, b)
}

func matMulTransBAcc(dst, a, b *Matrix) {
	if a.Rows*b.Rows*a.Cols >= minParallelFlops {
		parallelFor(a.Rows, func(i0, i1 int) { matMulTransBRange(dst, a, b, i0, i1) })
		return
	}
	matMulTransBRange(dst, a, b, 0, a.Rows)
}

// matMulTransBRange accumulates rows [i0, i1) of a·bᵀ into dst. The
// rows of b are walked in panels so the panel stays cached across the
// rows of a in this range.
func matMulTransBRange(dst, a, b *Matrix, i0, i1 int) {
	for p0 := 0; p0 < b.Rows; p0 += blockK {
		p1 := p0 + blockK
		if p1 > b.Rows {
			p1 = b.Rows
		}
		for i := i0; i < i1; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := p0; j < p1; j++ {
				brow := b.Row(j)
				var s float64
				for k := range arow {
					s += arow[k] * brow[k]
				}
				drow[j] += s
			}
		}
	}
}

// MatMulTransA returns aᵀ·b.
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b, reusing dst's storage.
func MatMulTransAInto(dst, a, b *Matrix) {
	checkMatMul("matmul-transA", dst, a.Cols, b.Cols, a.Rows, b.Rows)
	dst.Zero()
	matMulTransAAcc(dst, a, b)
}

// MatMulTransAAcc computes dst += aᵀ·b, reusing dst's storage. It is
// the allocation-free form of the gradient accumulations in internal/nn
// (dW += xᵀ·dy).
func MatMulTransAAcc(dst, a, b *Matrix) {
	checkMatMul("matmul-transA", dst, a.Cols, b.Cols, a.Rows, b.Rows)
	matMulTransAAcc(dst, a, b)
}

func matMulTransAAcc(dst, a, b *Matrix) {
	if a.Rows*a.Cols*b.Cols >= minParallelFlops {
		parallelFor(a.Cols, func(i0, i1 int) { matMulTransARange(dst, a, b, i0, i1) })
		return
	}
	matMulTransARange(dst, a, b, 0, a.Cols)
}

// matMulTransARange accumulates rows [i0, i1) of aᵀ·b into dst (row i
// of the output corresponds to column i of a).
func matMulTransARange(dst, a, b *Matrix, i0, i1 int) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := i0; i < i1; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// checkMatMul panics unless dst is wantR×wantC and the inner dimensions
// innerA and innerB agree.
func checkMatMul(op string, dst *Matrix, wantR, wantC, innerA, innerB int) {
	if innerA != innerB {
		panic(fmt.Sprintf("tensor: %s inner dims %d vs %d", op, innerA, innerB))
	}
	if dst.Rows != wantR || dst.Cols != wantC {
		panic(fmt.Sprintf("tensor: %s dst %dx%d want %dx%d", op, dst.Rows, dst.Cols, wantR, wantC))
	}
}
