// Package tensor provides dense float64 matrix math for the micro
// neural-network stack in internal/nn.
//
// The package follows the gonum convention for dimension errors: a shape
// mismatch is a programmer error and panics with a descriptive message,
// the same way the runtime panics on an out-of-range slice index. All
// other failures return errors.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (not copied) as an r×c matrix.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randomize fills m with N(0, std²) values drawn from rng.
func (m *Matrix) Randomize(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// shapeCheck panics unless a and b have identical shapes.
func shapeCheck(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	shapeCheck("add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Matrix) {
	shapeCheck("add", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub returns a-b.
func Sub(a, b *Matrix) *Matrix {
	shapeCheck("sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns the element-wise product a∘b.
func Hadamard(a, b *Matrix) *Matrix {
	shapeCheck("hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale multiplies every element of m by s, in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddRowVector adds vector v (length Cols) to every row of m, in place.
func (m *Matrix) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: row vector length %d want %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row, in place.
func (m *Matrix) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			row[j] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// SumRows returns the column-wise sum of m as a vector of length Cols.
func (m *Matrix) SumRows() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// MeanRows returns the column-wise mean of m.
func (m *Matrix) MeanRows() []float64 {
	out := m.SumRows()
	if m.Rows == 0 {
		return out
	}
	inv := 1 / float64(m.Rows)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether a and b have the same shape and elements within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Dot returns the dot product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x for equal-length vectors.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: axpy length %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}
