package tensor

import "fmt"

// Fused, allocation-free helpers for the training hot path. They exist
// so internal/nn and the distance loops can accumulate into long-lived
// buffers instead of materializing temporaries every step.

// Ensure returns m when it already has shape r×c, otherwise a freshly
// allocated r×c matrix. The contents of a reused matrix are unspecified;
// callers must fully overwrite them. It is the idiom for per-layer
// scratch buffers: buf = tensor.Ensure(buf, r, c).
func Ensure(m *Matrix, r, c int) *Matrix {
	if m != nil && m.Rows == r && m.Cols == c {
		return m
	}
	return New(r, c)
}

// AddInto computes dst = a+b, reusing dst's storage.
func AddInto(dst, a, b *Matrix) {
	shapeCheck("add", a, b)
	shapeCheck("add", dst, a)
	for i, av := range a.Data {
		dst.Data[i] = av + b.Data[i]
	}
}

// AxpyRows computes y += alpha·x over whole matrices — the matrix form
// of Axpy, fusing Scale+AddInPlace without a temporary.
func AxpyRows(alpha float64, x, y *Matrix) {
	shapeCheck("axpy-rows", x, y)
	Axpy(alpha, x.Data, y.Data)
}

// ScaleAddVec computes y = alpha·y + x for equal-length vectors — the
// in-place scale+add used by momentum-style accumulators.
func ScaleAddVec(alpha float64, y, x []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: scale-add length %d vs %d", len(y), len(x)))
	}
	for i := range y {
		y[i] = alpha*y[i] + x[i]
	}
}

// DotRows computes out[i] = x.Row(i)·y.Row(i) for every row, reusing
// out when it already has length x.Rows. Returns the filled slice.
func DotRows(x, y *Matrix, out []float64) []float64 {
	shapeCheck("dot-rows", x, y)
	if len(out) != x.Rows {
		out = make([]float64, x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		out[i] = Dot(x.Row(i), y.Row(i))
	}
	return out
}

// SumRowsInto accumulates the column-wise sums of m into dst, which
// must have length m.Cols. Unlike SumRows it adds to dst's existing
// contents — the shape of a bias-gradient accumulation.
func (m *Matrix) SumRowsInto(dst []float64) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: sum-rows dst length %d want %d", len(dst), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			dst[j] += v
		}
	}
}
