package pareto

import "math"

// point3 is a normalized objective point.
type point3 struct{ x, y, z float64 }

// ExactFront returns the indices of candidates on the exact (non-grid)
// Pareto front in raw objective space: no other candidate is ≤ in every
// objective and < in at least one.
func ExactFront(cands []Candidate) []int {
	var front []int
	for i := range cands {
		dominated := false
		for j := range cands {
			if i != j && dominates(cands[j], cands[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// dominates reports whether a dominates b in raw objective space.
func dominates(a, b Candidate) bool {
	strict := false
	for l := 0; l < 3; l++ {
		av, bv := a.objective(l), b.objective(l)
		if av > bv {
			return false
		}
		if av < bv {
			strict = true
		}
	}
	return strict
}

// Hypervolume computes the dominated hypervolume of a candidate subset
// against a reference (worst-case) point, with all three objectives
// min-max normalized over the full pool. Larger is better. The measure
// is the standard multi-objective front-quality indicator; the ablation
// benches use it to compare the grid-approximated front with the exact
// one.
//
// Computed by inclusion of axis-aligned boxes via a simple sweep over
// the loss dimension — O(n² ) after sorting, plenty for lattice-sized
// fronts.
func Hypervolume(indices []int, pool []Candidate) float64 {
	if len(indices) == 0 {
		return 0
	}
	var lo, hi [3]float64
	for l := 0; l < 3; l++ {
		lo[l], hi[l] = math.Inf(1), math.Inf(-1)
	}
	for _, c := range pool {
		for l := 0; l < 3; l++ {
			v := c.objective(l)
			lo[l] = math.Min(lo[l], v)
			hi[l] = math.Max(hi[l], v)
		}
	}
	norm := func(c Candidate, l int) float64 {
		span := hi[l] - lo[l]
		if span <= 0 {
			return 0
		}
		return (c.objective(l) - lo[l]) / span
	}

	// Points in normalized [0,1]³ minimization space; reference (1,1,1).
	pts := make([]point3, 0, len(indices))
	for _, i := range indices {
		pts = append(pts, point3{norm(pool[i], 0), norm(pool[i], 1), norm(pool[i], 2)})
	}
	// Sweep over x: sort ascending, each slab [x_i, x_next) contributes
	// slabWidth × (2-D hypervolume of the y-z front of points with
	// x ≤ x_i).
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].x < pts[j-1].x; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	var volume float64
	for i := range pts {
		xNext := 1.0
		if i+1 < len(pts) {
			xNext = pts[i+1].x
		}
		width := xNext - pts[i].x
		if width <= 0 {
			continue
		}
		volume += width * area2D(pts[:i+1])
	}
	return volume
}

// area2D computes the area dominated by (y, z) points against reference
// (1, 1), minimization: the union of rectangles [yᵢ,1]×[zᵢ,1].
func area2D(pts []point3) float64 {
	// Keep the non-dominated (y, z) pairs, sorted by y ascending — z is
	// then strictly decreasing along the front.
	type yz struct{ y, z float64 }
	var front []yz
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if (q.y < p.y && q.z <= p.z) || (q.y <= p.y && q.z < p.z) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, yz{p.y, p.z})
		}
	}
	for i := 1; i < len(front); i++ {
		for j := i; j > 0 && front[j].y < front[j-1].y; j-- {
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	// Each point adds the horizontal strip between the previous z level
	// and its own, spanning [yᵢ, 1].
	var area float64
	prevZ := 1.0
	for _, p := range front {
		if p.z >= prevZ {
			continue // duplicate y with worse z
		}
		area += (1 - p.y) * (prevZ - p.z)
		prevZ = p.z
	}
	return area
}
