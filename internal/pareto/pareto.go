// Package pareto implements ACME's Phase-1 backbone customization: the
// grid-decomposed multi-objective optimization of Algorithm 1. Each
// candidate backbone architecture is a point in (loss, energy, size)
// space; the package builds the Pareto Front Grid (PFG) of Eq. 11–12,
// truncates it by the cluster's storage constraint, and selects the
// final model by grid distance to the ideal point (Eq. 13).
//
// It also implements the matching baselines of Fig. 9 (Greedy-Accuracy,
// Greedy-Size, Random) and the evaluation metrics (energy/size
// efficiency ratios and the trade-off score).
package pareto

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Candidate is one backbone architecture with its three objective
// values f¹ (task loss), f² (energy), f³ (parameter count ζ).
type Candidate struct {
	W      float64 // width factor wᴮ
	D      int     // depth dᴮ
	Loss   float64 // f¹: lower is better
	Energy float64 // f²: joules
	Size   float64 // f³: ζ(θ), parameters
	// Accuracy is carried alongside for reporting; the optimizer itself
	// uses Loss.
	Accuracy float64
}

func (c Candidate) objective(l int) float64 {
	switch l {
	case 0:
		return c.Loss
	case 1:
		return c.Energy
	default:
		return c.Size
	}
}

// Config controls grid construction.
type Config struct {
	// PerformanceWindow is γp: the acceptable performance trade-off that
	// sets the number of grid intervals K = |f¹(θ*) − f¹(θ⁻)| / γp.
	PerformanceWindow float64
	// Sigma is the σ > 0 constant preventing division by zero (Eq. 11).
	Sigma float64
	// MaxIntervals caps K against degenerate windows.
	MaxIntervals int
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() Config {
	return Config{PerformanceWindow: 0.05, Sigma: 1e-9, MaxIntervals: 64}
}

// Grid is the constructed Pareto Front Grid for one device cluster.
type Grid struct {
	Cfg        Config
	K          int
	Candidates []Candidate
	// Coords[i][l] = Ψl of candidate i (Eq. 11).
	Coords [][3]int
	// Front holds indices of candidates on the grid-dominance Pareto
	// front (the union of the Φ sets).
	Front []int
	ideal [3]float64
	worst [3]float64
	r     [3]float64
}

// errors exposed for matching.
var (
	ErrNoCandidates = errors.New("pareto: no candidates")
	ErrNoFeasible   = errors.New("pareto: no candidate satisfies the storage constraint")
)

// Build constructs the PFG over candidates (Algorithm 1 lines 6–17).
func Build(cands []Candidate, cfg Config) (*Grid, error) {
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}
	if cfg.Sigma <= 0 {
		cfg.Sigma = 1e-9
	}
	if cfg.MaxIntervals <= 0 {
		cfg.MaxIntervals = 64
	}
	g := &Grid{Cfg: cfg, Candidates: append([]Candidate(nil), cands...)}
	for l := 0; l < 3; l++ {
		g.ideal[l] = math.Inf(1)
		g.worst[l] = math.Inf(-1)
	}
	for _, c := range g.Candidates {
		for l := 0; l < 3; l++ {
			v := c.objective(l)
			// Non-finite objective values (a diverged candidate's NaN
			// loss, an Inf energy estimate) are excluded from the grid
			// extent; coord pins them to the worst cell instead.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < g.ideal[l] {
				g.ideal[l] = v
			}
			if v > g.worst[l] {
				g.worst[l] = v
			}
		}
	}
	for l := 0; l < 3; l++ {
		if g.ideal[l] > g.worst[l] {
			// No finite value in this objective at all: collapse the
			// extent so the grid stays well-defined.
			g.ideal[l], g.worst[l] = 0, 0
		}
	}
	// K = |f¹(θ*) − f¹(θ⁻)| / γp, shared across objectives.
	k := 1
	if cfg.PerformanceWindow > 0 {
		k = int(math.Ceil((g.worst[0] - g.ideal[0]) / cfg.PerformanceWindow))
	}
	if k < 1 {
		k = 1
	}
	if k > cfg.MaxIntervals {
		k = cfg.MaxIntervals
	}
	g.K = k
	for l := 0; l < 3; l++ {
		g.r[l] = (g.worst[l] - g.ideal[l] + 2*cfg.Sigma) / float64(k)
	}
	g.Coords = make([][3]int, len(g.Candidates))
	for i, c := range g.Candidates {
		for l := 0; l < 3; l++ {
			g.Coords[i][l] = g.coord(c.objective(l), l)
		}
	}
	g.Front = g.gridFront()
	return g, nil
}

// coord computes Ψl = ⌈(f − f* + σ)/r⌉ clamped to [1, K] (Eq. 11).
// Non-finite values pin to the worst cell K (converting NaN through
// int is otherwise undefined).
func (g *Grid) coord(v float64, l int) int {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return g.K
	}
	c := int(math.Ceil((v - g.ideal[l] + g.Cfg.Sigma) / g.r[l]))
	if c < 1 {
		c = 1
	}
	if c > g.K {
		c = g.K
	}
	return c
}

// gridFront returns the indices whose grid coordinates are not
// grid-dominated by any other candidate — the union of the Φ sets that
// forms the Pareto Front Grid.
func (g *Grid) gridFront() []int {
	var front []int
	for i := range g.Candidates {
		dominated := false
		for j := range g.Candidates {
			if i == j {
				continue
			}
			if gridDominates(g.Coords[j], g.Coords[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// gridDominates reports whether coordinates a dominate b: a ≤ b in every
// objective with at least one strict improvement.
func gridDominates(a, b [3]int) bool {
	strict := false
	for l := 0; l < 3; l++ {
		if a[l] > b[l] {
			return false
		}
		if a[l] < b[l] {
			strict = true
		}
	}
	return strict
}

// Select applies the storage constraint ζ(θ) < sizeCap to the front,
// finds the feasible front model with the best performance, and within
// that model's grid cell picks the candidate minimizing the Euclidean
// distance of grid coordinates to the ideal point (Eq. 13).
func (g *Grid) Select(sizeCap float64) (Candidate, error) {
	// Truncated PFG: drop all models exceeding the cap.
	var feasible []int
	for _, i := range g.Front {
		if g.Candidates[i].Size < sizeCap {
			feasible = append(feasible, i)
		}
	}
	if len(feasible) == 0 {
		return Candidate{}, ErrNoFeasible
	}
	// Highest-performance (lowest loss) feasible front model. A finite
	// loss always beats a non-finite one: NaN compares false both ways,
	// so without the explicit rule a poisoned first candidate would
	// survive the scan.
	best := feasible[0]
	for _, i := range feasible[1:] {
		if lossBetter(g.Candidates[i].Loss, g.Candidates[best].Loss) {
			best = i
		}
	}
	// Φʰ: feasible front models sharing the performance grid cell of the
	// best model; choose by distance to the ideal coordinates (all 1s).
	perfCell := g.Coords[best][0]
	winner, bestDist := -1, math.Inf(1)
	for _, i := range feasible {
		if g.Coords[i][0] != perfCell {
			continue
		}
		var d float64
		for l := 0; l < 3; l++ {
			dd := float64(g.Coords[i][l] - 1)
			d += dd * dd
		}
		if d < bestDist {
			winner, bestDist = i, d
		}
	}
	if winner < 0 {
		winner = best
	}
	return g.Candidates[winner], nil
}

// lossBetter orders losses with finite values ahead of NaN/Inf.
func lossBetter(a, b float64) bool {
	af := !math.IsNaN(a) && !math.IsInf(a, 0)
	bf := !math.IsNaN(b) && !math.IsInf(b, 0)
	if af != bf {
		return af
	}
	return a < b
}

// Matcher selects a backbone candidate for a device under a size cap.
type Matcher interface {
	Name() string
	Select(cands []Candidate, sizeCap float64) (Candidate, error)
}

// PFGMatcher matches via the Pareto Front Grid. Building the grid is
// amortized across selections, mirroring the paper's "after constructing
// the front, obtain the required model quickly".
type PFGMatcher struct {
	Cfg  Config
	grid *Grid
}

var _ Matcher = (*PFGMatcher)(nil)

// Name implements Matcher.
func (m *PFGMatcher) Name() string { return "ours-pfg" }

// Select implements Matcher.
func (m *PFGMatcher) Select(cands []Candidate, sizeCap float64) (Candidate, error) {
	if m.grid == nil || !sameCandidates(m.grid.Candidates, cands) {
		g, err := Build(cands, m.Cfg)
		if err != nil {
			return Candidate{}, err
		}
		m.grid = g
	}
	return m.grid.Select(sizeCap)
}

// GreedyAccuracy picks the feasible candidate with the highest accuracy
// (Fig. 9's Greedy-Accuracy baseline).
type GreedyAccuracy struct{}

var _ Matcher = GreedyAccuracy{}

// Name implements Matcher.
func (GreedyAccuracy) Name() string { return "greedy-accuracy" }

// Select implements Matcher.
func (GreedyAccuracy) Select(cands []Candidate, sizeCap float64) (Candidate, error) {
	best, found := Candidate{}, false
	for _, c := range cands {
		if c.Size >= sizeCap {
			continue
		}
		if !found || c.Accuracy > best.Accuracy {
			best, found = c, true
		}
	}
	if !found {
		return Candidate{}, ErrNoFeasible
	}
	return best, nil
}

// GreedySize picks the largest feasible candidate (Fig. 9's Greedy-Size
// baseline).
type GreedySize struct{}

var _ Matcher = GreedySize{}

// Name implements Matcher.
func (GreedySize) Name() string { return "greedy-size" }

// Select implements Matcher.
func (GreedySize) Select(cands []Candidate, sizeCap float64) (Candidate, error) {
	best, found := Candidate{}, false
	for _, c := range cands {
		if c.Size >= sizeCap {
			continue
		}
		if !found || c.Size > best.Size {
			best, found = c, true
		}
	}
	if !found {
		return Candidate{}, ErrNoFeasible
	}
	return best, nil
}

// RandomMatcher picks a uniformly random feasible candidate.
type RandomMatcher struct {
	Rng *rand.Rand
}

var _ Matcher = (*RandomMatcher)(nil)

// Name implements Matcher.
func (*RandomMatcher) Name() string { return "random" }

// Select implements Matcher.
func (m *RandomMatcher) Select(cands []Candidate, sizeCap float64) (Candidate, error) {
	feasible := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Size < sizeCap {
			feasible = append(feasible, c)
		}
	}
	if len(feasible) == 0 {
		return Candidate{}, ErrNoFeasible
	}
	return feasible[m.Rng.Intn(len(feasible))], nil
}

// WeightedSum is the classic scalarization baseline used by the
// ablation benches: min Σ λl·f̂l over feasible candidates with
// min-max-normalized objectives.
type WeightedSum struct {
	Lambda [3]float64
}

var _ Matcher = (*WeightedSum)(nil)

// Name implements Matcher.
func (*WeightedSum) Name() string { return "weighted-sum" }

// Select implements Matcher.
func (m *WeightedSum) Select(cands []Candidate, sizeCap float64) (Candidate, error) {
	lambda := m.Lambda
	if lambda == ([3]float64{}) {
		lambda = [3]float64{1, 1, 1}
	}
	var lo, hi [3]float64
	for l := 0; l < 3; l++ {
		lo[l], hi[l] = math.Inf(1), math.Inf(-1)
	}
	for _, c := range cands {
		for l := 0; l < 3; l++ {
			v := c.objective(l)
			lo[l] = math.Min(lo[l], v)
			hi[l] = math.Max(hi[l], v)
		}
	}
	best, bestScore, found := Candidate{}, math.Inf(1), false
	for _, c := range cands {
		if c.Size >= sizeCap {
			continue
		}
		var s float64
		for l := 0; l < 3; l++ {
			span := hi[l] - lo[l]
			if span <= 0 {
				span = 1
			}
			s += lambda[l] * (c.objective(l) - lo[l]) / span
		}
		if s < bestScore {
			best, bestScore, found = c, s, true
		}
	}
	if !found {
		return Candidate{}, ErrNoFeasible
	}
	return best, nil
}

// Metrics are the Fig. 9 evaluation measures for a selected model.
type Metrics struct {
	Accuracy              float64
	Size                  float64
	Energy                float64
	EnergyEfficiencyRatio float64 // accuracy per unit energy
	SizeEfficiencyRatio   float64 // accuracy per unit size
	TradeoffScore         float64 // normalized L + E + ζ; lower is better
}

// Evaluate computes the Fig. 9 metrics of c against normalization
// baselines taken from the candidate pool.
func Evaluate(c Candidate, pool []Candidate) Metrics {
	var maxE, maxS, maxL float64
	for _, p := range pool {
		maxE = math.Max(maxE, p.Energy)
		maxS = math.Max(maxS, p.Size)
		maxL = math.Max(maxL, p.Loss)
	}
	norm := func(v, m float64) float64 {
		if m <= 0 {
			return v
		}
		return v / m
	}
	return Metrics{
		Accuracy:              c.Accuracy,
		Size:                  c.Size,
		Energy:                c.Energy,
		EnergyEfficiencyRatio: c.Accuracy / norm(c.Energy, maxE),
		SizeEfficiencyRatio:   c.Accuracy / norm(c.Size, maxS),
		TradeoffScore:         norm(c.Loss, maxL) + norm(c.Energy, maxE) + norm(c.Size, maxS),
	}
}

// SweepCandidates enumerates the (w, d) candidate lattice the cloud
// evaluates in Algorithm 1, with widths in ascending order.
func SweepCandidates(widths []float64, depths []int, eval func(w float64, d int) Candidate) []Candidate {
	ws := append([]float64(nil), widths...)
	sort.Float64s(ws)
	cands := make([]Candidate, 0, len(ws)*len(depths))
	for _, w := range ws {
		for _, d := range depths {
			cands = append(cands, eval(w, d))
		}
	}
	return cands
}

func sameCandidates(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer for diagnostics.
func (c Candidate) String() string {
	return fmt.Sprintf("cand{w=%.2f d=%d loss=%.4f E=%.1f ζ=%.0f acc=%.4f}", c.W, c.D, c.Loss, c.Energy, c.Size, c.Accuracy)
}
