package pareto

import (
	"math"
	"testing"
)

// Degenerate-input coverage: the grid must stay well-defined on the
// edges of its domain — one candidate, a totally dominated pool, and
// poisoned (NaN/Inf) objective values.

func TestBuildSingleCandidate(t *testing.T) {
	c := Candidate{W: 1, D: 8, Loss: 0.5, Energy: 100, Size: 1e6, Accuracy: 0.9}
	g, err := Build([]Candidate{c}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Front) != 1 || g.Front[0] != 0 {
		t.Fatalf("single candidate must be the whole front: %v", g.Front)
	}
	for l := 0; l < 3; l++ {
		if got := g.Coords[0][l]; got < 1 || got > g.K {
			t.Fatalf("coord[%d]=%d outside [1,%d]", l, got, g.K)
		}
	}
	got, err := g.Select(2e6)
	if err != nil || got != c {
		t.Fatalf("Select = %v, %v; want the only candidate", got, err)
	}
	if _, err := g.Select(1e3); err != ErrNoFeasible {
		t.Fatalf("infeasible cap: err = %v, want ErrNoFeasible", err)
	}
}

func TestBuildAllDominatedByOne(t *testing.T) {
	// Candidate 0 strictly dominates every other in all three
	// objectives; the front must be exactly {0}.
	cands := []Candidate{
		{Loss: 0.1, Energy: 10, Size: 1e5, Accuracy: 0.95},
		{Loss: 0.9, Energy: 500, Size: 9e6, Accuracy: 0.5},
		{Loss: 0.8, Energy: 400, Size: 8e6, Accuracy: 0.6},
		{Loss: 0.7, Energy: 300, Size: 7e6, Accuracy: 0.7},
	}
	g, err := Build(cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Front) != 1 || g.Front[0] != 0 {
		t.Fatalf("front = %v, want just the dominator", g.Front)
	}
	got, err := g.Select(1e9)
	if err != nil || got != cands[0] {
		t.Fatalf("Select = %v, %v; want the dominator", got, err)
	}
}

func TestBuildIdenticalCandidates(t *testing.T) {
	c := Candidate{Loss: 0.5, Energy: 100, Size: 1e6}
	g, err := Build([]Candidate{c, c, c}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Zero extent in every objective: everyone shares cell 1 and no one
	// dominates anyone.
	if len(g.Front) != 3 {
		t.Fatalf("identical candidates: front = %v, want all three", g.Front)
	}
	if _, err := g.Select(2e6); err != nil {
		t.Fatal(err)
	}
}

func TestBuildNonFiniteObjectives(t *testing.T) {
	cands := []Candidate{
		{Loss: 0.5, Energy: 100, Size: 1e6, Accuracy: 0.9},
		{Loss: math.NaN(), Energy: 90, Size: 9e5},
		{Loss: 0.4, Energy: math.Inf(1), Size: 8e5},
		{Loss: math.Inf(-1), Energy: math.NaN(), Size: math.Inf(1)},
	}
	g, err := Build(cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		for l := 0; l < 3; l++ {
			if got := g.Coords[i][l]; got < 1 || got > g.K {
				t.Fatalf("cand %d coord[%d]=%d outside [1,%d]", i, l, got, g.K)
			}
		}
	}
	// Poisoned values pin to the worst cell rather than hijacking the
	// ideal point: the fully finite candidate must stay selectable.
	got, err := g.Select(2e6)
	if err != nil {
		t.Fatal(err)
	}
	if got != cands[0] && got != cands[2] {
		t.Fatalf("Select returned a poisoned candidate: %v", got)
	}
	if math.IsNaN(got.Loss) {
		t.Fatalf("selected candidate has NaN loss: %v", got)
	}
}

func TestBuildAllNonFinite(t *testing.T) {
	cands := []Candidate{
		{Loss: math.NaN(), Energy: math.NaN(), Size: math.NaN()},
		{Loss: math.Inf(1), Energy: math.Inf(1), Size: math.Inf(1)},
	}
	g, err := Build(cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		for l := 0; l < 3; l++ {
			if got := g.Coords[i][l]; got < 1 || got > g.K {
				t.Fatalf("cand %d coord[%d]=%d outside [1,%d]", i, l, got, g.K)
			}
		}
	}
}
