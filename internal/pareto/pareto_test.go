package pareto

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// syntheticCandidates builds a lattice where loss falls and energy/size
// rise with w·d — the qualitative structure of the real sweep.
func syntheticCandidates() []Candidate {
	var cands []Candidate
	for wi := 1; wi <= 4; wi++ {
		w := float64(wi) / 4
		for d := 1; d <= 4; d++ {
			cap := w * float64(d)
			acc := 1 - math.Exp(-cap)
			cands = append(cands, Candidate{
				W: w, D: d,
				Loss:     1 - acc,
				Accuracy: acc,
				Energy:   100 * cap,
				Size:     1e6 * cap,
			})
		}
	}
	return cands
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, DefaultConfig()); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("got %v", err)
	}
}

func TestGridCoordinatesWithinRange(t *testing.T) {
	g, err := Build(syntheticCandidates(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, coords := range g.Coords {
		for l := 0; l < 3; l++ {
			if coords[l] < 1 || coords[l] > g.K {
				t.Fatalf("candidate %d coord %d = %d outside [1,%d]", i, l, coords[l], g.K)
			}
		}
	}
}

func TestFrontIsNonDominated(t *testing.T) {
	g, err := Build(syntheticCandidates(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Front) == 0 {
		t.Fatal("empty front")
	}
	inFront := map[int]bool{}
	for _, i := range g.Front {
		inFront[i] = true
	}
	for _, i := range g.Front {
		for j := range g.Candidates {
			if i != j && gridDominates(g.Coords[j], g.Coords[i]) {
				t.Fatalf("front member %d is grid-dominated by %d", i, j)
			}
		}
	}
}

func TestSelectRespectsCap(t *testing.T) {
	g, err := Build(syntheticCandidates(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const cap = 2.5e6
	sel, err := g.Select(cap)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size >= cap {
		t.Fatalf("selected size %v ≥ cap %v", sel.Size, cap)
	}
}

func TestSelectInfeasible(t *testing.T) {
	g, err := Build(syntheticCandidates(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Select(0); !errors.Is(err, ErrNoFeasible) {
		t.Fatalf("got %v", err)
	}
}

// TestSelectNeverDominatedFeasible: property — the PFG pick is never
// strictly worse in every objective than another feasible candidate.
func TestSelectNeverDominatedFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cands []Candidate
		for i := 0; i < 20; i++ {
			cands = append(cands, Candidate{
				W: rng.Float64(), D: 1 + rng.Intn(12),
				Loss:     rng.Float64(),
				Accuracy: rng.Float64(),
				Energy:   100 + 1000*rng.Float64(),
				Size:     1e6 * (1 + 10*rng.Float64()),
			})
		}
		g, err := Build(cands, DefaultConfig())
		if err != nil {
			return false
		}
		sel, err := g.Select(20e6)
		if err != nil {
			return true // no feasible candidate is acceptable
		}
		for _, c := range cands {
			if c.Size < 20e6 &&
				c.Loss < sel.Loss && c.Energy < sel.Energy && c.Size < sel.Size {
				// Strict domination in raw objective space is allowed to
				// differ from grid space only within one grid cell.
				gi := g.coord(c.Loss, 0)
				si := g.coord(sel.Loss, 0)
				if gi < si {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyAccuracyPicksBestFeasible(t *testing.T) {
	cands := syntheticCandidates()
	sel, err := GreedyAccuracy{}.Select(cands, 3e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Size < 3e6 && c.Accuracy > sel.Accuracy {
			t.Fatalf("missed better feasible candidate %v", c)
		}
	}
}

func TestGreedySizePicksLargestFeasible(t *testing.T) {
	cands := syntheticCandidates()
	sel, err := GreedySize{}.Select(cands, 3e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Size < 3e6 && c.Size > sel.Size {
			t.Fatalf("missed larger feasible candidate %v", c)
		}
	}
}

func TestRandomMatcherFeasible(t *testing.T) {
	m := &RandomMatcher{Rng: rand.New(rand.NewSource(1))}
	cands := syntheticCandidates()
	for i := 0; i < 50; i++ {
		sel, err := m.Select(cands, 2e6)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Size >= 2e6 {
			t.Fatalf("infeasible random pick %v", sel)
		}
	}
}

func TestWeightedSumRespectsCap(t *testing.T) {
	m := &WeightedSum{}
	sel, err := m.Select(syntheticCandidates(), 2e6)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size >= 2e6 {
		t.Fatalf("infeasible weighted-sum pick %v", sel)
	}
}

func TestMatchersReturnErrNoFeasible(t *testing.T) {
	cands := syntheticCandidates()
	matchers := []Matcher{
		GreedyAccuracy{}, GreedySize{},
		&RandomMatcher{Rng: rand.New(rand.NewSource(2))},
		&WeightedSum{},
		&PFGMatcher{Cfg: DefaultConfig()},
	}
	for _, m := range matchers {
		if _, err := m.Select(cands, 0); !errors.Is(err, ErrNoFeasible) {
			t.Fatalf("%s: got %v", m.Name(), err)
		}
	}
}

func TestPFGMatcherCachesGrid(t *testing.T) {
	m := &PFGMatcher{Cfg: DefaultConfig()}
	cands := syntheticCandidates()
	a, err := m.Select(cands, 3e6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Select(cands, 3e6)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same inputs must give same selection")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	cands := syntheticCandidates()
	met := Evaluate(cands[len(cands)-1], cands)
	if met.TradeoffScore <= 0 || met.EnergyEfficiencyRatio <= 0 || met.SizeEfficiencyRatio <= 0 {
		t.Fatalf("bad metrics %+v", met)
	}
}

func TestSweepCandidatesOrder(t *testing.T) {
	calls := 0
	cands := SweepCandidates([]float64{1.0, 0.5}, []int{2, 1}, func(w float64, d int) Candidate {
		calls++
		return Candidate{W: w, D: d}
	})
	if calls != 4 || len(cands) != 4 {
		t.Fatalf("sweep evaluated %d candidates", calls)
	}
	if cands[0].W != 0.5 {
		t.Fatal("widths must be ascending")
	}
}
