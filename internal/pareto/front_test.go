package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactFrontNonDominated(t *testing.T) {
	cands := syntheticCandidates()
	front := ExactFront(cands)
	if len(front) == 0 {
		t.Fatal("empty exact front")
	}
	for _, i := range front {
		for j := range cands {
			if i != j && dominates(cands[j], cands[i]) {
				t.Fatalf("front member %d dominated by %d", i, j)
			}
		}
	}
	// Every non-front candidate must be dominated by someone.
	inFront := map[int]bool{}
	for _, i := range front {
		inFront[i] = true
	}
	for i := range cands {
		if inFront[i] {
			continue
		}
		dominated := false
		for j := range cands {
			if i != j && dominates(cands[j], cands[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("candidate %d missing from the exact front", i)
		}
	}
}

func TestHypervolumeSinglePoint(t *testing.T) {
	pool := []Candidate{
		{Loss: 0, Energy: 0, Size: 0},
		{Loss: 1, Energy: 1, Size: 1},
	}
	// The ideal corner dominates everything: hypervolume 1.
	if hv := Hypervolume([]int{0}, pool); math.Abs(hv-1) > 1e-9 {
		t.Fatalf("ideal-point hypervolume %v want 1", hv)
	}
	// The worst corner dominates nothing.
	if hv := Hypervolume([]int{1}, pool); hv != 0 {
		t.Fatalf("worst-point hypervolume %v want 0", hv)
	}
}

func TestHypervolumeMidPoint(t *testing.T) {
	pool := []Candidate{
		{Loss: 0, Energy: 0, Size: 0},
		{Loss: 1, Energy: 1, Size: 1},
		{Loss: 0.5, Energy: 0.5, Size: 0.5},
	}
	if hv := Hypervolume([]int{2}, pool); math.Abs(hv-0.125) > 1e-9 {
		t.Fatalf("midpoint hypervolume %v want 0.125", hv)
	}
}

// TestHypervolumeMonotone: adding points never decreases hypervolume.
func TestHypervolumeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := make([]Candidate, 12)
		for i := range pool {
			pool[i] = Candidate{
				Loss:   rng.Float64(),
				Energy: rng.Float64(),
				Size:   rng.Float64(),
			}
		}
		subset := []int{0, 1, 2, 3}
		larger := []int{0, 1, 2, 3, 4, 5, 6}
		return Hypervolume(larger, pool) >= Hypervolume(subset, pool)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGridFrontNearExactFront: the PFG approximates the exact front —
// its hypervolume must be close (grid resolution K bounds the loss).
func TestGridFrontNearExactFront(t *testing.T) {
	cands := syntheticCandidates()
	g, err := Build(cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactFront(cands)
	hvExact := Hypervolume(exact, cands)
	hvGrid := Hypervolume(g.Front, cands)
	if hvExact <= 0 {
		t.Fatal("degenerate exact front")
	}
	if hvGrid < 0.85*hvExact {
		t.Fatalf("grid front hypervolume %.4f below 85%% of exact %.4f", hvGrid, hvExact)
	}
	if hvGrid > hvExact+1e-9 {
		t.Fatalf("grid front hypervolume %.4f exceeds exact %.4f", hvGrid, hvExact)
	}
}

func TestHypervolumeEmpty(t *testing.T) {
	if hv := Hypervolume(nil, syntheticCandidates()); hv != 0 {
		t.Fatalf("empty subset hypervolume %v", hv)
	}
}
