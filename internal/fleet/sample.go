package fleet

import (
	"math"
	"math/rand"
	"sort"
)

// Sampler draws each round's participation subset from the live member
// set: a uniform, seeded, deterministic sample (scored sampling over
// the registry's latency/bytes history is the planned follow-up). The
// draw depends only on (Seed, round, live set) — not on arrival order,
// transport, or wall clock — so every process of a distributed run
// that agrees on the membership view derives the same subset.
type Sampler struct {
	// Frac is the participation fraction in (0,1); values outside that
	// range disable sampling (every live member participates).
	Frac float64
	// Seed decorrelates the per-round draws from every other seeded
	// stream of the run.
	Seed int64
}

// Enabled reports whether the sampler actually subsets: a fraction in
// (0,1). Zero (the default) and ≥1 mean full participation.
func (s Sampler) Enabled() bool { return s.Frac > 0 && s.Frac < 1 }

// Size returns the sampled-subset size for n live members:
// ceil(Frac×n), at least 1 while any member is live.
func (s Sampler) Size(n int) int {
	if !s.Enabled() || n <= 0 {
		return n
	}
	k := int(math.Ceil(s.Frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Sample returns the round's participation subset of live, sorted.
// live may arrive in any order; the draw canonicalizes it first, so
// memory and TCP runs with the same membership view sample
// identically.
func (s Sampler) Sample(round int, live []string) []string {
	members := append([]string(nil), live...)
	sort.Strings(members)
	if !s.Enabled() || len(members) == 0 {
		return members
	}
	rng := rand.New(rand.NewSource(roundSeed(s.Seed, round)))
	rng.Shuffle(len(members), func(i, j int) {
		members[i], members[j] = members[j], members[i]
	})
	picked := members[:s.Size(len(members))]
	sort.Strings(picked)
	return picked
}

// roundSeed mixes the sampler seed with the round index (splitmix64
// finalizer) so consecutive rounds draw from well-separated streams
// rather than nearby rand.Source states.
func roundSeed(seed int64, round int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(round+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
