package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"acme/internal/wire"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("device-%d", i)
	}
	return out
}

func TestSamplerDeterministic(t *testing.T) {
	s := Sampler{Frac: 0.3, Seed: 42}
	live := names(20)
	for round := 0; round < 5; round++ {
		a := s.Sample(round, live)
		// Same round, shuffled input order: the draw must canonicalize.
		shuffled := append([]string(nil), live...)
		rand.New(rand.NewSource(int64(round))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b := s.Sample(round, shuffled)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round %d: input order changed the sample: %v vs %v", round, a, b)
		}
		if want := int(math.Ceil(0.3 * 20)); len(a) != want {
			t.Fatalf("round %d: sampled %d members, want %d", round, len(a), want)
		}
		seen := map[string]bool{}
		for _, m := range live {
			seen[m] = true
		}
		for _, m := range a {
			if !seen[m] {
				t.Fatalf("round %d sampled %q outside the live set", round, m)
			}
		}
	}
	// Different rounds must not all pick the same subset.
	if reflect.DeepEqual(s.Sample(0, live), s.Sample(1, live)) &&
		reflect.DeepEqual(s.Sample(1, live), s.Sample(2, live)) {
		t.Fatal("three consecutive rounds drew identical subsets")
	}
	// A different seed must eventually diverge.
	other := Sampler{Frac: 0.3, Seed: 43}
	diverged := false
	for round := 0; round < 8; round++ {
		if !reflect.DeepEqual(s.Sample(round, live), other.Sample(round, live)) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 drew identical subsets for 8 rounds")
	}
}

func TestSamplerDisabledAndBounds(t *testing.T) {
	for _, frac := range []float64{0, 1, 1.5, -0.2} {
		s := Sampler{Frac: frac, Seed: 1}
		if s.Enabled() {
			t.Fatalf("frac %v must disable sampling", frac)
		}
		got := s.Sample(3, []string{"b", "a"})
		if !reflect.DeepEqual(got, []string{"a", "b"}) {
			t.Fatalf("disabled sampler returned %v", got)
		}
	}
	// Tiny fractions still invite at least one member.
	s := Sampler{Frac: 0.001, Seed: 1}
	if got := s.Sample(0, names(5)); len(got) != 1 {
		t.Fatalf("floor sample size %d, want 1", len(got))
	}
	if got := s.Sample(0, nil); len(got) != 0 {
		t.Fatalf("empty live set sampled %v", got)
	}
}

func TestRegistryEpochAndLiveness(t *testing.T) {
	r := NewRegistry()
	if r.Epoch() != 0 || r.LiveCount() != 0 {
		t.Fatal("fresh registry not empty at epoch 0")
	}
	seed := map[string]int{"device-0": 0, "device-1": 1, "device-2": 2}
	if e := r.Seed(seed); e != 1 {
		t.Fatalf("seed epoch %d, want 1", e)
	}
	if got := r.Live(); !reflect.DeepEqual(got, []string{"device-0", "device-1", "device-2"}) {
		t.Fatalf("live after seed: %v", got)
	}
	// Leave bumps the epoch once; a duplicate LEAVE is a no-op.
	if e := r.Leave("device-1"); e != 2 {
		t.Fatalf("leave epoch %d, want 2", e)
	}
	if e := r.Leave("device-1"); e != 2 {
		t.Fatalf("duplicate leave bumped the epoch to %d", e)
	}
	if r.LiveCount() != 2 {
		t.Fatalf("live count %d after leave, want 2", r.LiveCount())
	}
	// Rejoin restores liveness with a fresh epoch.
	if e := r.Join("device-1", 1); e != 3 {
		t.Fatalf("rejoin epoch %d, want 3", e)
	}
	m, ok := r.Lookup("device-1")
	if !ok || !m.Alive || m.Joins != 2 || m.Leaves != 1 {
		t.Fatalf("rejoined member state: %+v", m)
	}
	// A join of an already-alive member changes nothing.
	if e := r.Join("device-0", 0); e != 3 {
		t.Fatalf("redundant join bumped the epoch to %d", e)
	}
}

func TestRegistryApplyControlPlane(t *testing.T) {
	r := NewRegistry()
	r.Seed(map[string]int{"device-0": 0, "device-1": 1})
	if !r.Apply("device-1", wire.ControlRecord{Type: wire.ControlLeave, Node: "device-1"}) {
		t.Fatal("LEAVE did not change membership")
	}
	if r.Apply("device-1", wire.ControlRecord{Type: wire.ControlLeave, Node: "device-1"}) {
		t.Fatal("duplicate LEAVE reported a change")
	}
	if !r.Apply("device-1", wire.ControlRecord{Type: wire.ControlResyncRequest, Node: "device-1", Device: 1}) {
		t.Fatal("RESYNC-REQUEST did not restore membership")
	}
	// A link-level JOIN (no Device field) must not clobber the seeded ID.
	r.Apply("device-0", wire.ControlRecord{Type: wire.ControlJoin, Node: "device-0"})
	if m, _ := r.Lookup("device-0"); m.Device != 0 {
		t.Fatalf("link-level JOIN clobbered device ID: %+v", m)
	}
	// Non-membership verbs are no-ops.
	if r.Apply("device-0", wire.ControlRecord{Type: wire.ControlRoundCutoff, Round: 3}) {
		t.Fatal("ROUND-CUTOFF changed membership")
	}
}

// TestRegistryChurnStormConverges drives a randomized join/leave storm
// through two registries in different interleavings of independent
// members; both must converge to the same live set and agree with a
// directly computed reference.
func TestRegistryChurnStormConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes := names(12)
	type event struct {
		node  string
		leave bool
	}
	var storm []event
	state := map[string]bool{}
	for _, n := range nodes {
		state[n] = true
	}
	for i := 0; i < 400; i++ {
		n := nodes[rng.Intn(len(nodes))]
		leave := rng.Float64() < 0.5
		storm = append(storm, event{n, leave})
		state[n] = !leave
	}

	seed := map[string]int{}
	for i, n := range nodes {
		seed[n] = i
	}
	a, b := NewRegistry(), NewRegistry()
	a.Seed(seed)
	b.Seed(seed)
	for _, ev := range storm {
		if ev.leave {
			a.Leave(ev.node)
		} else {
			a.Join(ev.node, -1)
		}
	}
	// b sees the same per-node event sequences, but nodes interleaved
	// differently (events of different members commute).
	byNode := map[string][]event{}
	for _, ev := range storm {
		byNode[ev.node] = append(byNode[ev.node], ev)
	}
	for len(byNode) > 0 {
		for _, n := range nodes {
			q := byNode[n]
			if len(q) == 0 {
				delete(byNode, n)
				continue
			}
			ev := q[0]
			byNode[n] = q[1:]
			if ev.leave {
				b.Leave(ev.node)
			} else {
				b.Join(ev.node, -1)
			}
		}
	}

	var want []string
	for _, n := range nodes {
		if state[n] {
			want = append(want, n)
		}
	}
	if got := a.Live(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry a diverged: %v, want %v", got, want)
	}
	if got := b.Live(); !reflect.DeepEqual(got, a.Live()) {
		t.Fatalf("interleaving changed the converged live set: %v vs %v", got, a.Live())
	}
}

func TestRegistryGatherHistory(t *testing.T) {
	r := NewRegistry()
	r.Seed(map[string]int{"device-0": 0})
	r.RecordGather("device-0", 0, 100, 2*time.Millisecond)
	r.RecordGather("device-0", 1, 150, 3*time.Millisecond)
	m, ok := r.Lookup("device-0")
	if !ok {
		t.Fatal("member lost")
	}
	if m.Rounds != 2 || m.LastRound != 1 || m.Bytes != 250 || m.Wall != 5*time.Millisecond {
		t.Fatalf("gather history: %+v", m)
	}
	// History does not bump the membership epoch.
	if r.Epoch() != 1 {
		t.Fatalf("gather history bumped epoch to %d", r.Epoch())
	}
}

func TestRecordGatherEWMARoundGated(t *testing.T) {
	r := NewRegistry()
	r.Seed(map[string]int{"device-0": 0})
	r.RecordGather("device-0", 0, 100, 10*time.Millisecond)
	m, _ := r.Lookup("device-0")
	if m.BytesEWMA != 100 || m.WallEWMA != 0.010 || m.StatRound != 0 {
		t.Fatalf("first observation must seed the EWMA: %+v", m)
	}
	// A second message in the same round (setup's second frame, a
	// resume-window retransmission) must not move the EWMA, while the
	// cumulative counters keep counting.
	r.RecordGather("device-0", 0, 9999, time.Second)
	m, _ = r.Lookup("device-0")
	if m.BytesEWMA != 100 || m.WallEWMA != 0.010 {
		t.Fatalf("same-round observation moved the EWMA: %+v", m)
	}
	if m.Rounds != 2 || m.Bytes != 100+9999 {
		t.Fatalf("cumulative counters should keep counting: %+v", m)
	}
	r.RecordGather("device-0", 1, 200, 20*time.Millisecond)
	m, _ = r.Lookup("device-0")
	if want := ewmaAlpha*200 + (1-ewmaAlpha)*100; m.BytesEWMA != want {
		t.Fatalf("BytesEWMA = %v, want %v", m.BytesEWMA, want)
	}
}

func TestRecordGatherEWMAShedsStragglyRound(t *testing.T) {
	r := NewRegistry()
	r.Seed(map[string]int{"device-0": 0})
	// Nine ordinary rounds, one straggly outlier, then nine more
	// ordinary rounds: the EWMA must decay back near the steady state
	// instead of carrying the outlier forever (which the cumulative
	// Wall average would).
	round := 0
	for i := 0; i < 9; i++ {
		r.RecordGather("device-0", round, 100, 10*time.Millisecond)
		round++
	}
	r.RecordGather("device-0", round, 100, 5*time.Second)
	round++
	for i := 0; i < 9; i++ {
		r.RecordGather("device-0", round, 100, 10*time.Millisecond)
		round++
	}
	m, _ := r.Lookup("device-0")
	if m.WallEWMA > 0.5 {
		t.Fatalf("one straggly round still dominates after 9 rounds: WallEWMA=%v", m.WallEWMA)
	}
	mean := m.Wall.Seconds() / float64(m.Rounds)
	if m.WallEWMA >= mean {
		t.Fatalf("EWMA %v should shed the outlier faster than the cumulative mean %v", m.WallEWMA, mean)
	}
}

func TestRecordImportanceGainEWMA(t *testing.T) {
	r := NewRegistry()
	r.Seed(map[string]int{"device-0": 0})
	r.RecordImportance("device-0", 0, 2.0)
	m, _ := r.Lookup("device-0")
	if !m.HaveMag || m.GainEWMA != 2.0 || m.LastMag != 2.0 || m.MagRound != 0 {
		t.Fatalf("first importance observation: %+v", m)
	}
	// Replay of the same round is dropped by the round gate.
	r.RecordImportance("device-0", 0, 50)
	if m, _ = r.Lookup("device-0"); m.GainEWMA != 2.0 {
		t.Fatalf("same-round importance moved the gain: %+v", m)
	}
	r.RecordImportance("device-0", 1, 1.5)
	m, _ = r.Lookup("device-0")
	if want := ewmaAlpha*0.5 + (1-ewmaAlpha)*2.0; m.GainEWMA != want {
		t.Fatalf("GainEWMA = %v, want %v", m.GainEWMA, want)
	}
	if m.LastMag != 1.5 {
		t.Fatalf("LastMag = %v, want 1.5", m.LastMag)
	}
}

// TestTelemetrySurvivesSnapshotRestore pins the crash-tolerance
// contract: the scheduler's telemetry must ride the same
// Snapshot/Restore path as liveness, so a restored edge re-derives
// identical picks.
func TestTelemetrySurvivesSnapshotRestore(t *testing.T) {
	r := NewRegistry()
	r.Seed(map[string]int{"device-0": 0, "device-1": 1})
	r.RecordGather("device-0", 0, 100, 10*time.Millisecond)
	r.RecordImportance("device-0", 0, 2.0)
	r.RecordGather("device-0", 1, 120, 12*time.Millisecond)
	r.RecordImportance("device-0", 1, 1.5)
	snap, epoch := r.Snapshot(), r.Epoch()
	r2 := NewRegistry()
	r2.Restore(snap, epoch)
	a, _ := r.Lookup("device-0")
	b, _ := r2.Lookup("device-0")
	if a != b {
		t.Fatalf("telemetry lost in restore: %+v vs %+v", a, b)
	}
	// Round-gating must survive too: a replayed observation after
	// restore is still a no-op.
	r2.RecordGather("device-0", 1, 9999, time.Second)
	if b, _ = r2.Lookup("device-0"); b.BytesEWMA != a.BytesEWMA {
		t.Fatalf("replayed round moved the restored EWMA: %+v", b)
	}
}
