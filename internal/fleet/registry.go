// Package fleet tracks distributed-run membership: an epoch-stamped
// registry of member devices fed by the session control plane
// (JOIN / LEAVE / RESYNC-REQUEST), with per-member liveness and
// traffic history, and a seeded deterministic sampler that picks each
// round's participation subset. The registry outlives any one
// connection — a member is a protocol participant, not a socket — so
// an edge consults it instead of the static cluster list when it
// builds a round: a departed member shrinks the round instead of
// hanging it, and a rejoined one re-enters without restarting the run.
package fleet

import (
	"sort"
	"sync"
	"time"

	"acme/internal/wire"
)

// Member is one registered device as the registry sees it.
type Member struct {
	// Node is the member's transport node name ("device-7").
	Node string
	// Device is the member's fleet device ID.
	Device int
	// Alive reports whether the member is currently in the run (joined
	// or resynced, and not departed).
	Alive bool
	// Epoch is the registry epoch of the member's last liveness change.
	Epoch uint64
	// Joins and Leaves count liveness transitions: the seed join plus
	// every resync, and every LEAVE.
	Joins  int
	Leaves int

	// Gather history: what the member contributed across rounds, fed by
	// the session layer's round gathers. LastRound is the most recent
	// round a contribution arrived in (-1 before the first).
	Rounds    int
	LastRound int
	// Bytes is the cumulative wire volume received from the member.
	Bytes int64
	// Wall is the cumulative gather wall time attributed to the
	// member's rounds.
	Wall time.Duration

	// Smoothed per-round telemetry for the scored (Pareto) scheduler.
	// The cumulative counters above double-count resume-window
	// retransmissions and let one straggly round dominate forever; the
	// EWMAs fold at most one observation per member per round (StatRound
	// guards the gate), so a restored run replays to the same series and
	// old outliers decay. BytesEWMA is wire bytes per contribution,
	// WallEWMA the member's gather arrival offset in seconds.
	BytesEWMA float64
	WallEWMA  float64
	// StatRound is the last round folded into the byte/wall EWMAs (-1
	// before the first).
	StatRound int

	// Importance-movement telemetry, fed from the edge fold path when
	// the scheduler is on: GainEWMA smooths the round-over-round change
	// in the member's decoded importance magnitude — the "expected
	// information gain" objective. LastMag is the previous magnitude,
	// HaveMag whether one was seen, MagRound the round gate (-1 before
	// the first).
	GainEWMA float64
	LastMag  float64
	HaveMag  bool
	MagRound int
}

// ewmaAlpha weights a new telemetry observation against the member's
// history: heavy enough that a few rounds re-rank a member, light
// enough that one straggly round doesn't dominate its score.
const ewmaAlpha = 0.25

func ewma(prev, v float64, first bool) float64 {
	if first {
		return v
	}
	return ewmaAlpha*v + (1-ewmaAlpha)*prev
}

// Registry is an epoch-stamped member set. Every liveness change
// (join, leave, rejoin) bumps the epoch, so a consumer that built a
// round from a snapshot can detect that membership moved underneath
// it. Gather statistics do not bump the epoch: they describe members,
// they do not change who is in the run.
type Registry struct {
	mu      sync.Mutex
	epoch   uint64
	members map[string]*Member
}

// NewRegistry returns an empty registry at epoch 0.
func NewRegistry() *Registry {
	return &Registry{members: make(map[string]*Member)}
}

// Seed registers the genesis member set (node name → device ID) as
// alive in one epoch bump — the static cluster list the run starts
// from, before the control plane takes over.
func (r *Registry) Seed(members map[string]int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch++
	for node, dev := range members {
		m := r.member(node)
		m.Device = dev
		m.Alive = true
		m.Epoch = r.epoch
		m.Joins++
	}
	return r.epoch
}

// member returns (creating if needed) the entry for node. Callers hold
// r.mu.
func (r *Registry) member(node string) *Member {
	m, ok := r.members[node]
	if !ok {
		m = &Member{Node: node, Device: -1, LastRound: -1, StatRound: -1, MagRound: -1}
		r.members[node] = m
	}
	return m
}

// Join marks a member alive, registering it on first sight. It bumps
// the epoch only when the liveness actually changes.
func (r *Registry) Join(node string, device int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.member(node)
	if device >= 0 {
		m.Device = device
	}
	if !m.Alive {
		r.epoch++
		m.Alive = true
		m.Epoch = r.epoch
		m.Joins++
	}
	return r.epoch
}

// Leave marks a member departed. Unknown nodes are ignored (a LEAVE
// from a node that was never a member is link noise, not a state
// change).
func (r *Registry) Leave(node string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[node]
	if !ok || !m.Alive {
		return r.epoch
	}
	r.epoch++
	m.Alive = false
	m.Epoch = r.epoch
	m.Leaves++
	return r.epoch
}

// Apply folds one control-plane record into the registry: JOIN and
// RESYNC-REQUEST mark the sender alive, LEAVE marks it departed; every
// other verb is a no-op. node is the transport-level sender (records
// may omit their Node field). It reports whether membership changed.
func (r *Registry) Apply(node string, rec wire.ControlRecord) bool {
	if rec.Node != "" {
		node = rec.Node
	}
	before := r.Epoch()
	switch rec.Type {
	case wire.ControlJoin:
		r.Join(node, deviceOf(rec))
	case wire.ControlResyncRequest:
		r.Join(node, deviceOf(rec))
	case wire.ControlLeave:
		r.Leave(node)
	}
	return r.Epoch() != before
}

// deviceOf extracts a record's device ID, mapping the untyped zero
// record (a link-level JOIN carries no device) to "unknown".
func deviceOf(rec wire.ControlRecord) int {
	if rec.Device == 0 && rec.Type == wire.ControlJoin && rec.Node != "" {
		// A link-level JOIN's Device field is not populated; keep any
		// previously seeded ID instead of clobbering it with 0.
		return -1
	}
	return rec.Device
}

// Epoch returns the current membership epoch.
func (r *Registry) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Live returns the sorted node names of every alive member — the set a
// round's participation sample draws from.
func (r *Registry) Live() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.members))
	for node, m := range r.members {
		if m.Alive {
			out = append(out, node)
		}
	}
	sort.Strings(out)
	return out
}

// LiveCount returns the number of alive members.
func (r *Registry) LiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.members {
		if m.Alive {
			n++
		}
	}
	return n
}

// Lookup returns a copy of the named member's entry.
func (r *Registry) Lookup(node string) (Member, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[node]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// Snapshot returns a copy of every member, sorted by node name.
func (r *Registry) Snapshot() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Restore replaces the registry's entire state with a previously
// Snapshot-ted member set at the given epoch — the checkpoint/restore
// path of a crashed session. The restored epoch must carry over
// exactly: consumers compare epochs to detect membership drift, and a
// restart is not a membership change.
func (r *Registry) Restore(members []Member, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch = epoch
	r.members = make(map[string]*Member, len(members))
	for _, m := range members {
		cp := m
		r.members[m.Node] = &cp
	}
}

// RecordGather folds one round contribution into a member's history:
// the wire bytes it delivered and the gather wall time its round cost.
// Unknown nodes are registered dead (history without liveness), so
// out-of-registry traffic is still accounted.
func (r *Registry) RecordGather(node string, round int, bytes int64, wall time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.member(node)
	m.Rounds++
	if round > m.LastRound {
		m.LastRound = round
	}
	m.Bytes += bytes
	m.Wall += wall
	// EWMAs fold the first observation of each round only: the setup
	// gather's second message, duplicate uploads inside a restore's
	// resume window, and resent buffers all arrive under an
	// already-folded round and leave the series untouched.
	if round > m.StatRound {
		first := m.StatRound < 0
		m.StatRound = round
		m.BytesEWMA = ewma(m.BytesEWMA, float64(bytes), first)
		m.WallEWMA = ewma(m.WallEWMA, wall.Seconds(), first)
	}
}

// RecordImportance folds the deterministic magnitude of one decoded
// importance upload into the member's gain telemetry. The tracked
// quantity is the EWMA of |magnitude − previous magnitude|: how much
// the member's importance picture is still moving, which is the
// scheduler's proxy for the information a future round with this
// member would carry. Round-gated like the gather EWMAs so replayed
// uploads fold at most once.
func (r *Registry) RecordImportance(node string, round int, mag float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.member(node)
	if round <= m.MagRound {
		return
	}
	m.MagRound = round
	if !m.HaveMag {
		// First sight: the whole magnitude is news.
		m.HaveMag = true
		m.GainEWMA = mag
	} else {
		m.GainEWMA = ewma(m.GainEWMA, mathAbs(mag-m.LastMag), false)
	}
	m.LastMag = mag
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
