// Package multiexit extends ACME with multi-exit inference: lightweight
// classification heads attached at several backbone depths, with
// confidence-thresholded early exit. The paper's related work (§V,
// LGViT and Bakhtiarnia et al.) motivates exactly this technique for
// deploying large models on devices; this package composes it with the
// repo's backbone and header machinery.
//
// Training optimizes the summed cross-entropy of all exits jointly
// (the standard multi-exit recipe); inference runs blocks incrementally
// and stops at the first exit whose softmax confidence clears the
// threshold, trading accuracy for executed depth.
package multiexit

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"acme/internal/data"
	"acme/internal/nn"
	"acme/internal/tensor"
)

// ExitHead is a lightweight head at one backbone depth: LayerNorm →
// token mean-pool → linear classifier (after the single-layer ViT exit
// heads of Bakhtiarnia et al.).
type ExitHead struct {
	Depth int // exits after block Depth (1-based; Depth blocks executed)
	ln    *nn.LayerNorm
	fc    *nn.Linear

	seqLen int
}

// Params implements nn.Module.
func (e *ExitHead) Params() []*nn.Param {
	return append(e.ln.Params(), e.fc.Params()...)
}

// forward computes logits from the token matrix at this exit's depth.
func (e *ExitHead) forward(tokens *tensor.Matrix) []float64 {
	e.seqLen = tokens.Rows
	normed := e.ln.Forward(tokens)
	pooled := tensor.FromSlice(1, tokens.Cols, normed.MeanRows())
	return e.fc.Forward(pooled).Row(0)
}

// backward returns the gradient at this exit's token matrix.
func (e *ExitHead) backward(dlogits []float64) *tensor.Matrix {
	dl := tensor.FromSlice(1, len(dlogits), dlogits)
	dpool := e.fc.Backward(dl)
	d := dpool.Cols
	dnormed := tensor.New(e.seqLen, d)
	inv := 1 / float64(e.seqLen)
	for t := 0; t < e.seqLen; t++ {
		row := dnormed.Row(t)
		for j := 0; j < d; j++ {
			row[j] = dpool.Data[j] * inv
		}
	}
	return e.ln.Backward(dnormed)
}

// Model is a backbone with exit heads at ascending depths.
type Model struct {
	Backbone *nn.Backbone
	Exits    []*ExitHead
	// Threshold is the softmax confidence required to exit early; the
	// final exit always fires.
	Threshold float64
}

// New builds exit heads at the given depths (each in
// [1, backbone.ActiveDepth]; the last active depth is appended
// automatically if missing).
func New(backbone *nn.Backbone, depths []int, numClasses int, rng *rand.Rand) (*Model, error) {
	ds := append([]int(nil), depths...)
	sort.Ints(ds)
	if len(ds) == 0 || ds[len(ds)-1] != backbone.ActiveDepth {
		ds = append(ds, backbone.ActiveDepth)
	}
	m := &Model{Backbone: backbone, Threshold: 0.9}
	seen := map[int]bool{}
	for _, d := range ds {
		if d < 1 || d > backbone.ActiveDepth {
			return nil, fmt.Errorf("multiexit: depth %d outside [1,%d]", d, backbone.ActiveDepth)
		}
		if seen[d] {
			continue
		}
		seen[d] = true
		name := fmt.Sprintf("exit%d", d)
		m.Exits = append(m.Exits, &ExitHead{
			Depth: d,
			ln:    nn.NewLayerNorm(name+".ln", backbone.Cfg.DModel, rng),
			fc:    nn.NewLinear(name+".fc", backbone.Cfg.DModel, numClasses, rng),
		})
	}
	return m, nil
}

// Params returns all exit-head parameters (the backbone's are managed
// separately).
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, e := range m.Exits {
		ps = append(ps, e.Params()...)
	}
	return ps
}

// InferenceResult describes one early-exit prediction.
type InferenceResult struct {
	Class      int
	ExitIndex  int     // which head fired
	Depth      int     // blocks executed
	Confidence float64 // softmax confidence at the firing exit
}

// Infer runs blocks incrementally and exits at the first head whose
// confidence clears the threshold.
func (m *Model) Infer(x []float64) (InferenceResult, error) {
	tokens, err := m.Backbone.Tokenize(x)
	if err != nil {
		return InferenceResult{}, err
	}
	next := 0
	for depth := 1; depth <= m.Backbone.ActiveDepth; depth++ {
		tokens = m.Backbone.Blocks[depth-1].Forward(tokens)
		for next < len(m.Exits) && m.Exits[next].Depth == depth {
			logits := m.Exits[next].forward(tokens)
			class, conf := argmaxConfidence(logits)
			last := next == len(m.Exits)-1
			if conf >= m.Threshold || last {
				return InferenceResult{Class: class, ExitIndex: next, Depth: depth, Confidence: conf}, nil
			}
			next++
		}
	}
	return InferenceResult{}, fmt.Errorf("multiexit: no exit fired (corrupt exit table)")
}

// TrainEpoch jointly trains all exits (and the backbone) with summed
// cross-entropy, returning the mean loss per sample.
func (m *Model) TrainEpoch(ds *data.Dataset, opt nn.Optimizer, batch int, trainBackbone bool, rng *rand.Rand) (float64, error) {
	if batch <= 0 {
		batch = 16
	}
	order := rng.Perm(ds.Len())
	var total float64
	for start := 0; start < len(order); start += batch {
		end := start + batch
		if end > len(order) {
			end = len(order)
		}
		nn.ZeroGrads(m)
		nn.ZeroGrads(m.Backbone)
		for _, i := range order[start:end] {
			loss, err := m.trainSample(ds.X[i], ds.Y[i], float64(end-start), trainBackbone)
			if err != nil {
				return 0, err
			}
			total += loss
		}
		params := m.Params()
		if trainBackbone {
			params = append(params, m.Backbone.Params()...)
		}
		opt.Step(params)
	}
	if ds.Len() == 0 {
		return 0, nil
	}
	return total / float64(ds.Len()), nil
}

// trainSample accumulates the summed-exit gradient for one sample.
func (m *Model) trainSample(x []float64, label int, batchSize float64, trainBackbone bool) (float64, error) {
	if _, err := m.Backbone.Forward(x); err != nil {
		return 0, err
	}
	hidden := m.Backbone.HiddenStates() // hidden[d-1] = tokens after block d
	injections := make(map[int]*tensor.Matrix, len(m.Exits))
	var total float64
	for _, e := range m.Exits {
		logits := e.forward(hidden[e.Depth-1])
		loss, dl := nn.CrossEntropy(logits, label)
		total += loss
		for j := range dl {
			dl[j] /= batchSize
		}
		dTokens := e.backward(dl)
		if prev, ok := injections[e.Depth]; ok {
			tensor.AddInPlace(prev, dTokens)
		} else {
			injections[e.Depth] = dTokens
		}
	}
	if trainBackbone {
		m.Backbone.Backward(nil, injections)
	}
	return total, nil
}

// Evaluate measures top-1 accuracy and the mean executed depth at the
// current threshold.
func (m *Model) Evaluate(ds *data.Dataset) (accuracy, meanDepth float64, err error) {
	if ds.Len() == 0 {
		return 0, 0, nil
	}
	var correct int
	var depthSum int
	for i := range ds.X {
		res, err := m.Infer(ds.X[i])
		if err != nil {
			return 0, 0, err
		}
		if res.Class == ds.Y[i] {
			correct++
		}
		depthSum += res.Depth
	}
	n := float64(ds.Len())
	return float64(correct) / n, float64(depthSum) / n, nil
}

// TradeoffPoint is one (threshold, accuracy, depth) sample of the
// early-exit accuracy/latency curve.
type TradeoffPoint struct {
	Threshold float64
	Accuracy  float64
	MeanDepth float64
}

// TradeoffCurve sweeps thresholds and reports the accuracy vs executed
// depth frontier.
func (m *Model) TradeoffCurve(ds *data.Dataset, thresholds []float64) ([]TradeoffPoint, error) {
	saved := m.Threshold
	defer func() { m.Threshold = saved }()
	out := make([]TradeoffPoint, 0, len(thresholds))
	for _, th := range thresholds {
		m.Threshold = th
		acc, depth, err := m.Evaluate(ds)
		if err != nil {
			return nil, err
		}
		out = append(out, TradeoffPoint{Threshold: th, Accuracy: acc, MeanDepth: depth})
	}
	return out, nil
}

func argmaxConfidence(logits []float64) (int, float64) {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum, best float64
	bi := 0
	for i, v := range logits {
		e := math.Exp(v - maxv)
		sum += e
		if e > best {
			best, bi = e, i
		}
	}
	return bi, best / sum
}
