package multiexit

import (
	"math/rand"
	"testing"

	"acme/internal/data"
	"acme/internal/nn"
)

func setup(t *testing.T, seed int64) (*Model, *data.Dataset, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec := data.Spec{
		Name: "me", NumClasses: 6, NumSuper: 2, Dim: 16,
		SuperSep: 3, ClassSep: 1, WithinStd: 0.5,
	}
	gen, err := data.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Sample(120, nil, rng)
	bb, err := nn.NewBackbone(nn.BackboneConfig{
		InputDim: 16, NumPatches: 4, DModel: 8, NumHeads: 2, Hidden: 12, Depth: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(bb, []int{1, 2}, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	return m, ds, rng
}

func TestNewAppendsFinalExit(t *testing.T) {
	m, _, _ := setup(t, 1)
	if len(m.Exits) != 3 {
		t.Fatalf("got %d exits", len(m.Exits))
	}
	if m.Exits[2].Depth != 3 {
		t.Fatalf("final exit at depth %d", m.Exits[2].Depth)
	}
}

func TestNewRejectsBadDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bb, err := nn.NewBackbone(nn.BackboneConfig{
		InputDim: 16, NumPatches: 4, DModel: 8, NumHeads: 2, Hidden: 12, Depth: 2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(bb, []int{5}, 4, rng); err == nil {
		t.Fatal("depth beyond backbone accepted")
	}
}

func TestInferAlwaysExits(t *testing.T) {
	m, ds, _ := setup(t, 3)
	m.Threshold = 0.999999 // force the final exit
	res, err := m.Infer(ds.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 3 || res.ExitIndex != 2 {
		t.Fatalf("expected final exit, got %+v", res)
	}
	m.Threshold = 0 // first exit always fires
	res, err = m.Infer(ds.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 1 || res.ExitIndex != 0 {
		t.Fatalf("expected first exit, got %+v", res)
	}
}

func TestTrainingImprovesAllExits(t *testing.T) {
	m, ds, rng := setup(t, 4)
	m.Threshold = 2 // never early-exit during evaluation: final head only
	accBefore, _, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewAdam(3e-3)
	for e := 0; e < 5; e++ {
		if _, err := m.TrainEpoch(ds, opt, 16, true, rng); err != nil {
			t.Fatal(err)
		}
	}
	accAfter, _, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if accAfter <= accBefore {
		t.Fatalf("joint training did not improve: %.3f → %.3f", accBefore, accAfter)
	}
	// Early exits must also have learned something: with threshold 0 the
	// first head fires and should beat chance (1/6).
	m.Threshold = 0
	accFirst, depth, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if depth != 1 {
		t.Fatalf("threshold 0 should always use depth 1, got %.2f", depth)
	}
	if accFirst < 0.3 {
		t.Fatalf("first exit stuck at chance: %.3f", accFirst)
	}
}

func TestTradeoffCurveMonotoneDepth(t *testing.T) {
	m, ds, rng := setup(t, 5)
	opt := nn.NewAdam(3e-3)
	for e := 0; e < 3; e++ {
		if _, err := m.TrainEpoch(ds, opt, 16, true, rng); err != nil {
			t.Fatal(err)
		}
	}
	points, err := m.TradeoffCurve(ds, []float64{0, 0.5, 0.9, 1.01})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].MeanDepth < points[i-1].MeanDepth-1e-9 {
			t.Fatalf("mean depth not monotone in threshold: %+v", points)
		}
	}
	if points[0].MeanDepth != 1 {
		t.Fatalf("threshold 0 mean depth %v", points[0].MeanDepth)
	}
	if points[len(points)-1].MeanDepth != 3 {
		t.Fatalf("threshold >1 mean depth %v", points[len(points)-1].MeanDepth)
	}
}

func TestFrozenBackboneUnchanged(t *testing.T) {
	m, ds, rng := setup(t, 6)
	snapshot := nn.Snapshot(m.Backbone)
	opt := nn.NewAdam(3e-3)
	if _, err := m.TrainEpoch(ds, opt, 16, false, rng); err != nil {
		t.Fatal(err)
	}
	after := nn.Snapshot(m.Backbone)
	for i := range snapshot.Values {
		for j := range snapshot.Values[i] {
			if snapshot.Values[i][j] != after.Values[i][j] {
				t.Fatal("frozen backbone was modified")
			}
		}
	}
}
