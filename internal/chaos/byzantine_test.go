package chaos

import (
	"math"
	"testing"
)

func honestLayers() [][]float64 {
	return [][]float64{{0.1, 0.2, 0.3, 0.4}, {0.5, 0.6}}
}

func TestParseStrategy(t *testing.T) {
	for _, ok := range []string{"", "inflate", "fabricate", "replay"} {
		if _, err := ParseStrategy(ok); err != nil {
			t.Fatalf("ParseStrategy(%q): %v", ok, err)
		}
	}
	if _, err := ParseStrategy("omniscient"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestLiarDeterministicAndNonMutating(t *testing.T) {
	for _, strat := range []Strategy{StrategyInflate, StrategyFabricate, StrategyReplay} {
		a := &Liar{Strategy: strat, Prob: 0.6, Seed: 5, Device: 3}
		b := &Liar{Strategy: strat, Prob: 0.6, Seed: 5, Device: 3}
		for round := 0; round < 12; round++ {
			in := honestLayers()
			outA := a.Corrupt(round, honestLayers())
			outB := b.Corrupt(round, honestLayers())
			for l := range outA {
				for i := range outA[l] {
					if outA[l][i] != outB[l][i] {
						t.Fatalf("%s round %d: same seed diverged at [%d][%d]", strat, round, l, i)
					}
				}
			}
			// The input must never be mutated, lying or not.
			got := a.Corrupt(round, in)
			ref := honestLayers()
			for l := range in {
				for i := range in[l] {
					if in[l][i] != ref[l][i] {
						t.Fatalf("%s round %d: Corrupt mutated its input", strat, round)
					}
				}
			}
			_ = got
		}
	}
}

func TestLiarStrategies(t *testing.T) {
	// Prob 1: every round lies.
	inflate := &Liar{Strategy: StrategyInflate, Prob: 1, Factor: 4, Seed: 1, Device: 0}
	out := inflate.Corrupt(0, honestLayers())
	if out[0][0] != 0.4 {
		t.Fatalf("inflate by 4: got %v, want 0.4", out[0][0])
	}

	fab := &Liar{Strategy: StrategyFabricate, Prob: 1, Factor: 2, Seed: 1, Device: 0}
	out = fab.Corrupt(0, honestLayers())
	same := true
	for l, row := range out {
		for i, v := range row {
			if v != honestLayers()[l][i] {
				same = false
			}
			if v < 0 || v >= 0.6*2 {
				t.Fatalf("fabricated value %v outside [0, %v)", v, 0.6*2)
			}
		}
	}
	if same {
		t.Fatal("fabricate returned the honest upload")
	}

	// Replay: Prob 0.5 over enough rounds gives both honest rounds
	// (which refresh prev) and lying rounds (which resend it).
	rep := &Liar{Strategy: StrategyReplay, Prob: 0.5, Seed: 9, Device: 1}
	var prevHonest [][]float64
	replayed := false
	for round := 0; round < 40; round++ {
		in := honestLayers()
		// Make each round's honest upload distinct.
		in[0][0] = float64(round)
		out := rep.Corrupt(round, in)
		if out[0][0] != float64(round) {
			// Lied: must equal the most recent honest upload.
			if prevHonest == nil || out[0][0] != prevHonest[0][0] {
				t.Fatalf("round %d: replayed %v, want last honest %v", round, out[0][0], prevHonest)
			}
			replayed = true
		} else {
			prevHonest = [][]float64{{float64(round)}}
		}
	}
	if !replayed {
		t.Fatal("replay liar never replayed in 40 rounds at prob 0.5")
	}

	// Replay at Prob 1: no honest rounds ever refresh prev, so the
	// first upload primes the replay source and every later round
	// re-sends it frozen — the free-rider never trains again.
	frozen := &Liar{Strategy: StrategyReplay, Prob: 1, Seed: 3, Device: 2}
	first := honestLayers()
	first[0][0] = 42
	out = frozen.Corrupt(0, first)
	if out[0][0] != 42 {
		t.Fatalf("priming round altered the upload: %v", out[0][0])
	}
	for round := 1; round < 5; round++ {
		in := honestLayers()
		in[0][0] = float64(round)
		out = frozen.Corrupt(round, in)
		if out[0][0] != 42 {
			t.Fatalf("round %d: frozen replay sent %v, want the primed 42", round, out[0][0])
		}
	}
}

func TestDetectorFlagsAndEvicts(t *testing.T) {
	d := &Detector{}
	honest := func() []float64 { return []float64{0.1, 0.2, 0.3, 0.4, 0.5} }
	inflated := make([]float64, 5)
	for i, v := range honest() {
		inflated[i] = v * 10
	}
	round := func() Verdict {
		return d.Inspect(map[int][]float64{
			0: inflated, 1: honest(), 2: honest(), 3: honest(),
		})
	}
	v := round()
	if len(v.Suspects) != 1 || v.Suspects[0] != 0 {
		t.Fatalf("round 0 suspects %v (scores %v, threshold %v), want [0]", v.Suspects, v.Scores, v.Threshold)
	}
	if len(v.Evicted) != 0 {
		t.Fatalf("evicted %v after one strike, strike limit is 2", v.Evicted)
	}
	v = round()
	if len(v.Evicted) != 1 || v.Evicted[0] != 0 {
		t.Fatalf("round 1 evicted %v, want [0] at the default strike limit", v.Evicted)
	}
	if d.Strikes(0) != 2 {
		t.Fatalf("strikes(0) = %d, want 2", d.Strikes(0))
	}
	// Eviction is reported once.
	v = round()
	if len(v.Evicted) != 0 {
		t.Fatalf("device re-evicted: %v", v.Evicted)
	}
}

func TestDetectorSkipsSmallAndCleanRounds(t *testing.T) {
	d := &Detector{}
	v := d.Inspect(map[int][]float64{0: {1}, 1: {2}})
	if len(v.Scores) != 0 || len(v.Suspects) != 0 {
		t.Fatalf("two-device round scored: %+v", v)
	}
	// All-honest round: nobody flagged.
	honest := []float64{0.1, 0.2, 0.3}
	v = d.Inspect(map[int][]float64{0: honest, 1: honest, 2: honest, 3: honest})
	if len(v.Suspects) != 0 {
		t.Fatalf("clean round flagged %v (threshold %v, scores %v)", v.Suspects, v.Threshold, v.Scores)
	}
}

func TestDownsample(t *testing.T) {
	layers := [][]float64{make([]float64, 700), make([]float64, 500)}
	for l := range layers {
		for i := range layers[l] {
			layers[l][i] = float64(l*1000 + i)
		}
	}
	out := Downsample(layers, 512)
	if len(out) > 512 {
		t.Fatalf("downsampled to %d values, budget 512", len(out))
	}
	if len(out) < 512/2 {
		t.Fatalf("downsample kept only %d of a 512 budget", len(out))
	}
	// Deterministic.
	out2 := Downsample(layers, 512)
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("downsample is not deterministic")
		}
	}
	if Downsample(nil, 16) != nil {
		t.Fatal("empty input should downsample to nil")
	}
	small := Downsample(layers, math.MaxInt)
	if len(small) != 1200 {
		t.Fatalf("unbounded budget kept %d of 1200 values", len(small))
	}
}
