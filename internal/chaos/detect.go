package chaos

// Edge-side statistical detection of Byzantine uploads. The anomaly
// score is the machinery the edge already trusts for clustering:
// internal/wasserstein's 1-D optimal-transport distance. Each device's
// uploaded importance values (downsampled to a fixed budget) are
// compared against the pooled values of every other device in the
// round; a device whose distribution sits far outside the cluster's —
// past a robust median + K·MAD threshold — is flagged, and repeat
// offenders cross the strike limit into eviction.

import (
	"sort"

	"acme/internal/wasserstein"
)

// Detector scores one cluster's uploads round by round and tracks
// repeat offenders. It is not safe for concurrent use; each edge owns
// one.
type Detector struct {
	// K is the MAD multiplier in the outlier threshold
	// median·(1+margin) + K·MAD. Zero selects the default of 3.
	K float64
	// Margin is the relative slack on the median, guarding against a
	// near-zero MAD when honest uploads are nearly identical. Zero
	// selects the default of 0.5.
	Margin float64
	// StrikeLimit is how many flagged rounds evict a device. Zero
	// selects the default of 2; negative disables eviction.
	StrikeLimit int
	// MaxValues bounds the per-device sample the distance runs on.
	// Zero selects the default of 512.
	MaxValues int
	// ReplayFrac is the replay cut on the cross-round self-distance: a
	// device whose upload sits within ReplayFrac of the cluster's
	// median self-drift from its own previous upload is flagged as a
	// replay (honest training keeps drifting; a re-sent upload is *too*
	// similar — its distance to itself is exactly zero). Zero selects
	// the default of 0.1; negative disables the replay screen.
	ReplayFrac float64

	strikes map[int]int
	evicted map[int]bool
	// prev keeps each device's previous-round sample, the reference the
	// self-distance is measured against.
	prev map[int][]float64
}

// Verdict is one round's detection outcome.
type Verdict struct {
	// Scores is each inspected device's anomaly score: the Wasserstein
	// distance between its upload values and the pooled values of the
	// round's other devices.
	Scores map[int]float64
	// Threshold is the robust outlier cut applied to Scores.
	Threshold float64
	// SelfScores is each device's cross-round self-distance: the
	// Wasserstein distance between this round's upload and the same
	// device's previous one. Absent for devices seen for the first
	// time.
	SelfScores map[int]float64
	// SelfThreshold is the replay cut applied to SelfScores: uploads at
	// or below it are too static to be honest training.
	SelfThreshold float64
	// Suspects lists the devices flagged this round (distribution
	// outliers and replay suspects merged), ascending.
	Suspects []int
	// ReplaySuspects lists the subset of Suspects flagged by the
	// self-distance replay screen, ascending.
	ReplaySuspects []int
	// Evicted lists the devices whose strike count crossed the limit
	// this round, ascending. Each device is reported at most once.
	Evicted []int
}

func (d *Detector) k() float64 {
	if d.K <= 0 {
		return 3
	}
	return d.K
}

func (d *Detector) margin() float64 {
	if d.Margin <= 0 {
		return 0.5
	}
	return d.Margin
}

func (d *Detector) strikeLimit() int {
	if d.StrikeLimit == 0 {
		return 2
	}
	return d.StrikeLimit
}

func (d *Detector) maxValues() int {
	if d.MaxValues <= 0 {
		return 512
	}
	return d.MaxValues
}

// Downsample flattens layers into at most max values with a
// deterministic stride, so the distance cost is bounded by the sample
// budget, not the model size.
func Downsample(layers [][]float64, max int) []float64 {
	total := 0
	for _, row := range layers {
		total += len(row)
	}
	if total == 0 {
		return nil
	}
	stride := 1
	if total > max {
		stride = (total + max - 1) / max
	}
	out := make([]float64, 0, (total+stride-1)/stride)
	i := 0
	for _, row := range layers {
		for _, v := range row {
			if i%stride == 0 {
				out = append(out, v)
			}
			i++
		}
	}
	return out
}

// Sample prepares one device's upload for Inspect: flatten and
// downsample to the detector's value budget.
func (d *Detector) Sample(layers [][]float64) []float64 {
	return Downsample(layers, d.maxValues())
}

// median of xs, which it sorts in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func (d *Detector) replayFrac() float64 {
	if d.ReplayFrac == 0 {
		return 0.1
	}
	if d.ReplayFrac < 0 {
		return 0
	}
	return d.ReplayFrac
}

// rememberSamples rotates this round's samples into the self-distance
// reference book. Callers hold no lock; the detector is single-owner.
func (d *Detector) rememberSamples(samples map[int][]float64) {
	if d.prev == nil {
		d.prev = make(map[int][]float64, len(samples))
	}
	for id, s := range samples {
		d.prev[id] = append([]float64(nil), s...)
	}
}

// Inspect scores one round's uploads (device ID → sampled values) and
// updates the strike book. Rounds with fewer than three devices are
// not scored: there is no distribution to be an outlier of.
func (d *Detector) Inspect(samples map[int][]float64) Verdict {
	v := Verdict{Scores: make(map[int]float64, len(samples))}
	if len(samples) < 3 {
		d.rememberSamples(samples)
		return v
	}
	ids := make([]int, 0, len(samples))
	total := 0
	for id, s := range samples {
		ids = append(ids, id)
		total += len(s)
	}
	sort.Ints(ids)
	// Each device's score: distance between its sample and the pooled
	// sample of everyone else this round.
	pooled := make([]float64, 0, total)
	for _, id := range ids {
		pooled = pooled[:0]
		for _, other := range ids {
			if other != id {
				pooled = append(pooled, samples[other]...)
			}
		}
		v.Scores[id] = wasserstein.Distance1D(samples[id], pooled, 1)
	}
	scores := make([]float64, 0, len(ids))
	for _, id := range ids {
		scores = append(scores, v.Scores[id])
	}
	m := median(scores)
	dev := make([]float64, len(scores))
	for i, s := range scores {
		dev[i] = s - m
		if dev[i] < 0 {
			dev[i] = -dev[i]
		}
	}
	mad := median(dev)
	v.Threshold = m*(1+d.margin()) + d.k()*mad
	flagged := make(map[int]bool)
	for _, id := range ids {
		if v.Scores[id] > v.Threshold {
			flagged[id] = true
		}
	}

	// Replay screen: a re-sent upload has an honest *distribution* (the
	// pooled-distance score above is blind to it) but a degenerate
	// temporal signature — its distance to the device's own previous
	// upload is exactly zero, while honest training keeps drifting. Cut
	// at a small fraction of the cluster's median self-drift, so the
	// screen self-calibrates to however fast this cluster converges and
	// stays silent when the whole cluster has genuinely stalled
	// (median ≈ 0).
	if frac := d.replayFrac(); frac > 0 {
		v.SelfScores = make(map[int]float64, len(ids))
		selfs := make([]float64, 0, len(ids))
		for _, id := range ids {
			ref, ok := d.prev[id]
			if !ok {
				continue
			}
			sd := wasserstein.Distance1D(samples[id], ref, 1)
			v.SelfScores[id] = sd
			selfs = append(selfs, sd)
		}
		if len(selfs) >= 3 {
			if sm := median(selfs); sm > 0 {
				v.SelfThreshold = frac * sm
				for _, id := range ids {
					sd, ok := v.SelfScores[id]
					if ok && sd <= v.SelfThreshold && !flagged[id] {
						flagged[id] = true
						v.ReplaySuspects = append(v.ReplaySuspects, id)
					}
				}
			}
		}
	}
	d.rememberSamples(samples)

	if d.strikes == nil {
		d.strikes = make(map[int]int)
		d.evicted = make(map[int]bool)
	}
	for _, id := range ids {
		if !flagged[id] {
			continue
		}
		v.Suspects = append(v.Suspects, id)
		d.strikes[id]++
		if lim := d.strikeLimit(); lim > 0 && d.strikes[id] >= lim && !d.evicted[id] {
			d.evicted[id] = true
			v.Evicted = append(v.Evicted, id)
		}
	}
	return v
}

// State is the detector's serializable cross-round memory: the strike
// book, the evicted set, and each device's previous-round sample —
// everything a restored edge needs to keep judging a session where it
// left off. Maps travel as sorted slices so the encoded form is
// deterministic.
type State struct {
	Strikes []StrikeEntry
	Evicted []int
	Prev    []SampleEntry
}

// StrikeEntry is one device's accumulated flag count.
type StrikeEntry struct {
	ID int
	N  int
}

// SampleEntry is one device's previous-round sample.
type SampleEntry struct {
	ID     int
	Values []float64
}

// State exports the detector's cross-round memory.
func (d *Detector) State() State {
	var st State
	ids := make([]int, 0, len(d.strikes))
	for id := range d.strikes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.Strikes = append(st.Strikes, StrikeEntry{ID: id, N: d.strikes[id]})
	}
	for id, ev := range d.evicted {
		if ev {
			st.Evicted = append(st.Evicted, id)
		}
	}
	sort.Ints(st.Evicted)
	ids = ids[:0]
	for id := range d.prev {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.Prev = append(st.Prev, SampleEntry{ID: id, Values: append([]float64(nil), d.prev[id]...)})
	}
	return st
}

// Restore replaces the detector's cross-round memory with st.
func (d *Detector) Restore(st State) {
	d.strikes = make(map[int]int, len(st.Strikes))
	for _, e := range st.Strikes {
		d.strikes[e.ID] = e.N
	}
	d.evicted = make(map[int]bool, len(st.Evicted))
	for _, id := range st.Evicted {
		d.evicted[id] = true
	}
	d.prev = make(map[int][]float64, len(st.Prev))
	for _, e := range st.Prev {
		d.prev[e.ID] = append([]float64(nil), e.Values...)
	}
}

// Strikes returns a device's accumulated flag count.
func (d *Detector) Strikes(id int) int { return d.strikes[id] }
