package chaos

// Byzantine device strategies: a Liar deterministically corrupts a
// device's importance uploads before they are encoded, so the edge-side
// detector (detect.go) has something real to find. Whether a given
// round lies, and what the lie looks like, derives from a splitmix64
// hash of (seed, device, round) — reproducible across runs and
// transports, which is what lets the trial matrix report stable
// TPR/FPR numbers.

import "fmt"

// Strategy names a Byzantine corruption mode.
type Strategy string

// Byzantine strategies.
const (
	// StrategyInflate multiplies every importance value by Factor: the
	// classic self-promotion attack — the device's update dominates the
	// similarity-weighted aggregate.
	StrategyInflate Strategy = "inflate"
	// StrategyFabricate replaces the upload with hash-derived noise
	// scaled to Factor× the honest value range: the device never ran
	// training at all.
	StrategyFabricate Strategy = "fabricate"
	// StrategyReplay re-sends the device's previous honest upload:
	// free-riding on stale state instead of computing fresh importance.
	StrategyReplay Strategy = "replay"
)

// ParseStrategy validates a strategy name ("" means none).
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "", StrategyInflate, StrategyFabricate, StrategyReplay:
		return Strategy(s), nil
	}
	return "", fmt.Errorf("chaos: unknown byzantine strategy %q (want inflate, fabricate, or replay)", s)
}

// Liar corrupts one device's importance uploads.
type Liar struct {
	// Strategy selects the corruption mode.
	Strategy Strategy
	// Prob is the per-round probability of lying.
	Prob float64
	// Factor scales the corruption (inflate multiplier, fabricate
	// range multiplier). Zero selects the default of 10.
	Factor float64
	// Seed and Device identify the hash stream.
	Seed   int64
	Device int

	// prev is the last honest upload, the replay source.
	prev [][]float64
}

// factor returns the configured corruption scale.
func (l *Liar) factor() float64 {
	if l.Factor <= 0 {
		return 10
	}
	return l.Factor
}

// lies reports whether the liar corrupts the given round.
func (l *Liar) lies(round int) bool {
	if l.Strategy == "" || l.Prob <= 0 {
		return false
	}
	h := draw(l.Seed, fnv1a("byz")^splitmix64(uint64(l.Device)), uint64(round), 0)
	return frac(h) < l.Prob
}

// Corrupt returns the layers the device should upload for the round:
// the input unchanged on honest rounds, a corrupted copy on lying
// rounds. The input is never mutated — the device's own training state
// stays honest, only the wire copy lies.
func (l *Liar) Corrupt(round int, layers [][]float64) [][]float64 {
	lying := l.lies(round)
	if !lying {
		if l.Strategy == StrategyReplay {
			// Keep the replay source fresh: the next lie re-sends the
			// most recent honest upload.
			l.prev = copyLayers(layers)
		}
		return layers
	}
	switch l.Strategy {
	case StrategyInflate:
		out := copyLayers(layers)
		f := l.factor()
		for _, row := range out {
			for i := range row {
				row[i] *= f
			}
		}
		return out
	case StrategyFabricate:
		out := copyLayers(layers)
		// Scale the noise to Factor× the honest maximum so the values
		// are wrong in range, not just in shape.
		var hi float64
		for _, row := range layers {
			for _, v := range row {
				if v > hi {
					hi = v
				}
			}
		}
		if hi == 0 {
			hi = 1
		}
		span := hi * l.factor()
		pair := fnv1a("fab") ^ splitmix64(uint64(l.Device))
		var i uint64
		for _, row := range out {
			for j := range row {
				row[j] = frac(draw(l.Seed, pair, uint64(round), i)) * span
				i++
			}
		}
		return out
	case StrategyReplay:
		if l.prev == nil {
			// Nothing to replay yet: this upload goes out honestly but
			// becomes the replay source, so an always-lying device (Prob
			// 1) freezes on its first upload instead of degenerating
			// into perfect honesty.
			l.prev = copyLayers(layers)
			return layers
		}
		return copyLayers(l.prev)
	}
	return layers
}

func copyLayers(layers [][]float64) [][]float64 {
	out := make([][]float64, len(layers))
	for i, row := range layers {
		out[i] = append([]float64(nil), row...)
	}
	return out
}
