package chaos

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"acme/internal/transport"
)

func TestFlakyDeliversEverything(t *testing.T) {
	mem := transport.NewMemory()
	mem.Register("sink", 256)
	f := NewFlaky(mem, 2*time.Millisecond, 1)
	const n = 40
	for i := 0; i < n; i++ {
		if err := f.Send(transport.Message{Kind: transport.KindControl, From: "src", To: "sink", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	seen := map[byte]bool{}
	for i := 0; i < n; i++ {
		msg, err := f.Recv(ctx, "sink")
		if err != nil {
			t.Fatal(err)
		}
		seen[msg.Payload[0]] = true
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct messages, want %d", len(seen), n)
	}
	f.Wait()
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFlakyDuplication(t *testing.T) {
	mem := transport.NewMemory()
	mem.Register("sink", 256)
	f := New(mem, Options{Seed: 2, Default: Profile{Jitter: time.Millisecond, DuplicateProb: 1}})
	const n = 10
	for i := 0; i < n; i++ {
		if err := f.Send(transport.Message{Kind: transport.KindControl, From: "src", To: "sink"}); err != nil {
			t.Fatal(err)
		}
	}
	f.Wait()
	if got := mem.Stats().TotalMessages(); got != 2*n {
		t.Fatalf("expected %d deliveries with duplication, got %d", 2*n, got)
	}
}

// Reordering happens across links, never within one: per-pair FIFO is
// part of the model (a TCP connection would do the same), so the delay
// injection shuffles interleaving between senders only.
func TestReordersAcrossSendersNotWithinPair(t *testing.T) {
	mem := transport.NewMemory()
	mem.Register("sink", 1024)
	f := New(mem, Options{Seed: 3, Default: Profile{Jitter: 4 * time.Millisecond}})
	const senders, each = 4, 30
	for i := 0; i < each; i++ {
		for s := 0; s < senders; s++ {
			if err := f.Send(transport.Message{
				Kind: transport.KindControl, From: fmt.Sprintf("src-%d", s), To: "sink",
				Payload: []byte{byte(s), byte(i)},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	lastBySender := map[byte]int{}
	crossOrderBreaks := 0
	lastSender := byte(255)
	for i := 0; i < senders*each; i++ {
		msg, err := f.Recv(ctx, "sink")
		if err != nil {
			t.Fatal(err)
		}
		s, seq := msg.Payload[0], int(msg.Payload[1])
		if last, ok := lastBySender[s]; ok && seq <= last {
			t.Fatalf("per-pair order violated: sender %d delivered %d after %d", s, seq, last)
		}
		lastBySender[s] = seq
		if lastSender != 255 && s != (lastSender+1)%senders {
			crossOrderBreaks++
		}
		lastSender = s
	}
	if crossOrderBreaks == 0 {
		t.Fatal("delays never interleaved senders differently from the send order — injection is not working")
	}
}

// The old Flaky wrapper raced wg.Add in Send against Close's wg.Wait
// and swallowed inner-send errors. The chaos lifecycle must do
// neither: Send after Close fails fast, all delivery goroutines drain
// before the inner transport closes, and a failed delivery surfaces.
func TestLifecycleAndGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	mem := transport.NewMemory()
	mem.Register("sink", 64)
	f := New(mem, Options{Seed: 7, Default: Profile{Jitter: 2 * time.Millisecond}})
	for i := 0; i < 32; i++ {
		if err := f.Send(transport.Message{Kind: transport.KindControl, From: "src", To: "sink"}); err != nil {
			t.Fatal(err)
		}
	}
	// A delivery to an unregistered node must surface, not vanish.
	_ = f.Send(transport.Message{Kind: transport.KindControl, From: "src", To: "nobody"})
	if err := f.Close(); err == nil {
		t.Fatal("Close swallowed the failed delivery to an unknown node")
	}
	if err := f.Send(transport.Message{Kind: transport.KindControl, From: "src", To: "sink"}); err == nil {
		t.Fatal("Send after Close succeeded")
	}
	// All delivery goroutines must have drained by the time Close
	// returned (wg.Wait before inner close).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after Close", before, after)
	}
}

// The wrapper must forward the complete Transport surface of whatever
// it wraps — TCP addressing and peer tables included — so the session
// API composes with chaos over any substrate.
func TestForwardsFullTransport(t *testing.T) {
	inner, err := transport.NewTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFlaky(inner, time.Millisecond, 1)
	var tr transport.Transport = f // compile-time and runtime interface check
	if tr.Addr() != inner.Addr() {
		t.Fatalf("Addr %q does not forward inner %q", tr.Addr(), inner.Addr())
	}
	if tr.Stats() != inner.Stats() {
		t.Fatal("Stats does not forward the inner counters")
	}
	b, err := transport.NewTCP("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	tr.SetPeers(map[string]string{"a": inner.Addr(), "b": b.Addr()})
	if err := tr.Send(transport.Message{Kind: transport.KindControl, From: "a", To: "b", Payload: []byte("via chaos+tcp")}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	msg, err := b.Recv(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Payload) != "via chaos+tcp" {
		t.Fatalf("payload %q", msg.Payload)
	}
	// Close must tear down the wrapped TCP node.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := inner.Send(transport.Message{Kind: transport.KindControl, From: "a", To: "b"}); err == nil {
		t.Fatal("inner TCP still alive after chaos Close")
	}
	// Memory wrapped in chaos keeps a defined address and counters.
	mf := NewFlaky(transport.NewMemory(), time.Millisecond, 1)
	if mf.Addr() == "" || mf.Stats() == nil {
		t.Fatal("chaos-over-memory lacks transport surface")
	}
	mf.SetPeers(nil) // no-op, must not panic
}

// sendScript drives a fixed multi-node exchange through a chaos net:
// per-pair program order is identical on every run, which is the
// contract the schedule hash keys on.
func sendScript(t *testing.T, n *Net) {
	t.Helper()
	for r := 0; r < 8; r++ {
		for _, hop := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "a"}, {"c", "b"}} {
			payload := make([]byte, 10+3*r)
			if err := n.Send(transport.Message{
				Kind: transport.KindImportanceSet, From: hop[0], To: hop[1],
				Round: r, Payload: payload,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	n.Wait()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
}

var detProfile = Profile{
	BaseDelay: 200 * time.Microsecond, Jitter: 2 * time.Millisecond,
	SpikeProb: 0.2, SpikeDelay: 4 * time.Millisecond, BandwidthBps: 4 << 20,
	DuplicateProb: 0.1,
}

// The same seed must produce the identical per-message delivery
// schedule no matter which transport carries the traffic: the satellite
// determinism contract for the link model.
func TestScheduleDeterministicAcrossMemoryAndTCP(t *testing.T) {
	// Memory run: one shared substrate.
	mem := transport.NewMemory()
	for _, n := range []string{"a", "b", "c"} {
		mem.Register(n, 256)
	}
	cm := New(mem, Options{Seed: 99, Default: detProfile, Record: true})
	sendScript(t, cm)
	memTrace := cm.Trace()

	// TCP run: one transport per node, each behind its own chaos
	// wrapper with the same seed. The union of their traces must match
	// the memory run message for message, delay for delay.
	nodes := map[string]*transport.TCP{}
	peers := map[string]string{}
	for _, n := range []string{"a", "b", "c"} {
		tr, err := transport.NewTCP(n, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		nodes[n] = tr
		peers[n] = tr.Addr()
	}
	wrapped := map[string]*Net{}
	for n, tr := range nodes {
		tr.SetPeers(peers)
		wrapped[n] = New(tr, Options{Seed: 99, Default: detProfile, Record: true})
	}
	// Drain inboxes so TCP sends never block on full buffers.
	drainCtx, stopDrain := context.WithCancel(context.Background())
	defer stopDrain()
	for _, n := range []string{"a", "b", "c"} {
		go func(name string) {
			for {
				msg, err := nodes[name].Recv(drainCtx, name)
				if err != nil {
					return
				}
				msg.Release()
			}
		}(n)
	}
	// Drive each sender through its own wrapper, preserving the same
	// per-pair program order as the memory run.
	for r := 0; r < 8; r++ {
		for _, hop := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "a"}, {"c", "b"}} {
			payload := make([]byte, 10+3*r)
			if err := wrapped[hop[0]].Send(transport.Message{
				Kind: transport.KindImportanceSet, From: hop[0], To: hop[1],
				Round: r, Payload: payload,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	var tcpTrace []Delivery
	for _, n := range []string{"a", "b", "c"} {
		wrapped[n].Wait()
		if err := wrapped[n].Err(); err != nil {
			t.Fatal(err)
		}
		tcpTrace = append(tcpTrace, wrapped[n].Trace()...)
	}
	// Canonical order: reuse the Trace sort by round-tripping through a
	// recording net.
	sorter := &Net{opts: Options{Record: true}, trace: tcpTrace}
	tcpTrace = sorter.Trace()

	if len(memTrace) != len(tcpTrace) {
		t.Fatalf("schedule lengths diverge: memory %d, tcp %d", len(memTrace), len(tcpTrace))
	}
	for i := range memTrace {
		if memTrace[i] != tcpTrace[i] {
			t.Fatalf("schedule entry %d diverges:\n  memory %+v\n  tcp    %+v", i, memTrace[i], tcpTrace[i])
		}
	}
	// The schedule must also be non-trivial: some jitter, some spikes.
	varied := false
	for i := 1; i < len(memTrace); i++ {
		if memTrace[i].Delay != memTrace[0].Delay {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("every scheduled delay identical — the profile hash is not mixing")
	}
}
