package chaos

import (
	"reflect"
	"testing"
)

// drift returns a sample that moved a small honest step away from base.
func drift(base []float64, step float64) []float64 {
	out := make([]float64, len(base))
	for i, v := range base {
		out[i] = v + step*float64(i+1)
	}
	return out
}

func TestDetectorFlagsReplay(t *testing.T) {
	d := &Detector{}
	base := []float64{0.1, 0.25, 0.4, 0.55, 0.7}
	// Round 0 seeds everyone's previous sample; nothing to compare yet.
	r0 := map[int][]float64{}
	for id := 0; id < 4; id++ {
		r0[id] = drift(base, 0.01*float64(id+1))
	}
	v := d.Inspect(r0)
	if len(v.ReplaySuspects) != 0 {
		t.Fatalf("first round replay suspects %v, nothing to replay yet", v.ReplaySuspects)
	}
	// Round 1: honest devices drift on; device 0 re-sends its round-0
	// upload byte for byte.
	r1 := map[int][]float64{0: r0[0]}
	for id := 1; id < 4; id++ {
		r1[id] = drift(r0[id], 0.02*float64(id+1))
	}
	v = d.Inspect(r1)
	if len(v.ReplaySuspects) != 1 || v.ReplaySuspects[0] != 0 {
		t.Fatalf("replay suspects %v (self scores %v, cut %v), want [0]",
			v.ReplaySuspects, v.SelfScores, v.SelfThreshold)
	}
	if len(v.Suspects) != 1 || v.Suspects[0] != 0 {
		t.Fatalf("merged suspects %v, want [0]", v.Suspects)
	}
	if v.SelfScores[0] != 0 {
		t.Fatalf("replayed upload self-distance %v, want exactly 0", v.SelfScores[0])
	}
	if d.Strikes(0) != 1 {
		t.Fatalf("strikes(0) = %d after one replay", d.Strikes(0))
	}
	// Round 2: the same replay again crosses the default strike limit.
	r2 := map[int][]float64{0: r0[0]}
	for id := 1; id < 4; id++ {
		r2[id] = drift(r1[id], 0.02*float64(id+1))
	}
	v = d.Inspect(r2)
	if len(v.Evicted) != 1 || v.Evicted[0] != 0 {
		t.Fatalf("evicted %v after two replay strikes, want [0]", v.Evicted)
	}
}

func TestDetectorReplayScreenGuards(t *testing.T) {
	// A cluster that has genuinely stalled (every self-distance zero)
	// must not be flagged: the median guard keeps the screen silent.
	d := &Detector{}
	same := map[int][]float64{0: {1, 2, 3}, 1: {1.1, 2.1, 3.1}, 2: {0.9, 1.9, 2.9}}
	d.Inspect(same)
	v := d.Inspect(same)
	if len(v.ReplaySuspects) != 0 {
		t.Fatalf("stalled-cluster round flagged %v", v.ReplaySuspects)
	}
	// A negative ReplayFrac disables the screen outright.
	d2 := &Detector{ReplayFrac: -1}
	r0 := map[int][]float64{0: {1, 2}, 1: {3, 4}, 2: {5, 6}}
	d2.Inspect(r0)
	v = d2.Inspect(map[int][]float64{0: {1, 2}, 1: {3.5, 4.5}, 2: {5.5, 6.5}})
	if v.SelfScores != nil || len(v.ReplaySuspects) != 0 {
		t.Fatalf("disabled screen still scored: %+v", v)
	}
}

func TestDetectorStateRoundTrip(t *testing.T) {
	d := &Detector{}
	base := []float64{0.2, 0.4, 0.6, 0.8}
	r0 := map[int][]float64{}
	for id := 0; id < 4; id++ {
		r0[id] = drift(base, 0.01*float64(id+1))
	}
	d.Inspect(r0)
	d.Inspect(map[int][]float64{
		0: r0[0], // replay strike
		1: drift(r0[1], 0.05),
		2: drift(r0[2], 0.06),
		3: drift(r0[3], 0.07),
	})
	st := d.State()
	if len(st.Prev) != 4 || len(st.Strikes) != 1 || st.Strikes[0] != (StrikeEntry{ID: 0, N: 1}) {
		t.Fatalf("state %+v", st)
	}
	// A fresh detector restored from the state must judge the next
	// round identically to the original.
	r2 := map[int][]float64{
		0: r0[0],
		1: drift(r0[1], 0.1),
		2: drift(r0[2], 0.11),
		3: drift(r0[3], 0.12),
	}
	restored := &Detector{}
	restored.Restore(st)
	want := d.Inspect(r2)
	got := restored.Inspect(r2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored verdict %+v vs original %+v", got, want)
	}
	if !reflect.DeepEqual(restored.State(), d.State()) {
		t.Fatalf("post-round state diverged")
	}
}
