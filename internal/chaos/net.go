// Package chaos is the adversarial scenario engine: a composable,
// seeded link-fault model behind transport.Transport (per-pair delay
// distributions with jitter and latency spikes, bandwidth throttling,
// scheduled partitions and heals), Byzantine device strategies that
// corrupt importance uploads, and the statistical machinery the edge
// uses to detect them.
//
// Everything is deterministic under a seed. Each message's behaviour —
// delay, spike, duplication — derives from a splitmix64 hash of
// (seed, sender, receiver, per-pair sequence number), not from a shared
// RNG consumed in arrival order, so two runs of the same protocol
// produce identical per-pair delivery schedules no matter which
// transport carries them or how goroutines interleave. The recorded
// schedule (Trace) is directly comparable across Memory and TCP.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"acme/internal/transport"
)

// Profile describes the behaviour of one link direction.
type Profile struct {
	// BaseDelay is the fixed propagation delay added to every message.
	BaseDelay time.Duration
	// Jitter adds a uniform [0, Jitter) component per message.
	Jitter time.Duration
	// SpikeProb is the per-message probability of a latency spike.
	SpikeProb float64
	// SpikeDelay is the spike magnitude: a spiked message waits an
	// extra uniform [0, SpikeDelay).
	SpikeDelay time.Duration
	// BandwidthBps throttles serialization: every message waits an
	// additional payloadBits/BandwidthBps. 0 means unthrottled.
	BandwidthBps int64
	// DuplicateProb is the per-message probability of a second delivery
	// with an independently drawn delay.
	DuplicateProb float64
}

// zero reports whether the profile perturbs nothing.
func (p Profile) zero() bool {
	return p.BaseDelay == 0 && p.Jitter == 0 && p.SpikeProb == 0 &&
		p.BandwidthBps == 0 && p.DuplicateProb == 0
}

// LinkRule binds a profile to the link pairs it matches. Empty From/To
// match any node; the first matching rule wins.
type LinkRule struct {
	From, To string
	Profile  Profile
}

// Window schedules one partition between two nodes, both directions.
// Times are measured from the Net's creation. Messages whose delivery
// would fall inside the window are held at the link head and delivered
// at End (the heal), in their original per-pair order.
type Window struct {
	// A and B name the partitioned nodes; an empty string is a
	// wildcard, so {A: "edge-0"} isolates edge-0 from everyone.
	A, B string
	// Start and End bound the partition, relative to the Net's start.
	Start, End time.Duration
}

// matches reports whether the window covers the from→to link.
func (w Window) matches(from, to string) bool {
	okA := w.A == "" || w.A == from || w.A == to
	okB := w.B == "" || w.B == from || w.B == to
	if w.A != "" && w.B != "" {
		// Both named: the pair must be exactly {A, B}.
		return (w.A == from && w.B == to) || (w.A == to && w.B == from)
	}
	return okA && okB
}

// Options configures a Net.
type Options struct {
	// Seed drives every per-message draw. Two Nets with the same seed,
	// rules, and per-pair send sequences compute identical schedules.
	Seed int64
	// Default is the profile for links no rule matches.
	Default Profile
	// Links are per-pair overrides, first match wins.
	Links []LinkRule
	// Partitions are the scheduled partition windows.
	Partitions []Window
	// Record enables the per-message schedule trace (Trace). Off by
	// default: a long run would otherwise accumulate unbounded history.
	Record bool
}

// Delivery is one recorded scheduling decision.
type Delivery struct {
	From, To string
	// Seq is the message's per-pair program-order sequence number.
	Seq   uint64
	Kind  transport.Kind
	Round int
	// Delay is the computed schedule delay (base+jitter+spike+
	// serialization), before FIFO holds and partition deferral.
	Delay time.Duration
	// Dup marks the duplicate copy of a duplicated message.
	Dup bool
}

// pairState is the per-link scheduling state.
type pairState struct {
	seq     uint64
	nextDue time.Time
	// last is the previous delivery's completion signal: each delivery
	// waits for it before forwarding, making per-pair order a hard
	// guarantee rather than a race between near-equal due times.
	last chan struct{}
}

// Net wraps a Transport with the seeded link-fault model. It is the
// successor of the old transport.Flaky wrapper (see NewFlaky) with a
// fixed lifecycle: Send after Close fails instead of racing Close's
// wait, and inner-send errors from delivery goroutines are collected
// and surfaced by Err and Close rather than swallowed.
type Net struct {
	inner transport.Transport
	opts  Options
	start time.Time

	mu     sync.Mutex
	pairs  map[string]*pairState
	trace  []Delivery
	errs   []error
	closed bool
	wg     sync.WaitGroup
}

var _ transport.Transport = (*Net)(nil)

// New wraps inner with the chaos link model.
func New(inner transport.Transport, opts Options) *Net {
	return &Net{
		inner: inner,
		opts:  opts,
		start: time.Now(),
		pairs: make(map[string]*pairState),
	}
}

// NewFlaky is the legacy coin-flip wrapper, reimplemented as a chaos
// preset: every message is delayed uniformly in [0, maxDelay) and
// nothing else is perturbed. Use New with a Profile carrying
// DuplicateProb for the duplication the old wrapper exposed as a
// mutable field.
func NewFlaky(inner transport.Transport, maxDelay time.Duration, seed int64) *Net {
	return New(inner, Options{Seed: seed, Default: Profile{Jitter: maxDelay}})
}

// Inner returns the wrapped transport.
func (n *Net) Inner() transport.Transport { return n.inner }

// splitmix64 is the standard SplitMix64 mixer — the same generator the
// fleet sampler uses, duplicated here to keep the packages independent.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a hashes a string deterministically (across processes, unlike
// hash/maphash) for mixing node names into the per-message seed.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// draw returns the i-th independent uniform uint64 for a message
// identified by (seed, pair, seq).
func draw(seed int64, pairHash, seq uint64, i uint64) uint64 {
	return splitmix64(splitmix64(uint64(seed)) ^ pairHash ^ splitmix64(seq+1) + i*0x9e3779b97f4a7c15)
}

// frac maps a uint64 draw to [0, 1).
func frac(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// profileFor picks the first matching link rule, else the default.
func (n *Net) profileFor(from, to string) Profile {
	for _, r := range n.opts.Links {
		if (r.From == "" || r.From == from) && (r.To == "" || r.To == to) {
			return r.Profile
		}
	}
	return n.opts.Default
}

// schedule computes the message's deterministic delay and duplication
// from the profile and the per-message hash stream.
func schedule(p Profile, seed int64, pairHash, seq uint64, payloadLen int) (delay time.Duration, dup bool, dupDelay time.Duration) {
	delay = p.BaseDelay
	if p.Jitter > 0 {
		delay += time.Duration(frac(draw(seed, pairHash, seq, 0)) * float64(p.Jitter))
	}
	if p.SpikeProb > 0 && frac(draw(seed, pairHash, seq, 1)) < p.SpikeProb {
		delay += time.Duration(frac(draw(seed, pairHash, seq, 2)) * float64(p.SpikeDelay))
	}
	if p.BandwidthBps > 0 {
		delay += time.Duration(int64(payloadLen) * 8 * int64(time.Second) / p.BandwidthBps)
	}
	if p.DuplicateProb > 0 && frac(draw(seed, pairHash, seq, 3)) < p.DuplicateProb {
		dup = true
		dupDelay = delay
		if p.Jitter > 0 {
			dupDelay = p.BaseDelay + time.Duration(frac(draw(seed, pairHash, seq, 4))*float64(p.Jitter))
		}
	}
	return delay, dup, dupDelay
}

// healAfter returns the latest End among partition windows that contain
// the instant at offset off on the from→to link, or 0 when none does.
func (n *Net) healAfter(from, to string, off time.Duration) time.Duration {
	var heal time.Duration
	for _, w := range n.opts.Partitions {
		if w.matches(from, to) && off >= w.Start && off < w.End && w.End > heal {
			heal = w.End
		}
	}
	return heal
}

// Send implements Network: the message is scheduled per the link's
// profile and delivered asynchronously at its due time. Per-pair FIFO
// order is preserved — a message never overtakes an earlier one on the
// same link — matching what a single TCP connection would do, so delay
// injection reorders across links, not within one.
func (n *Net) Send(msg transport.Message) error {
	prof := n.profileFor(msg.From, msg.To)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("chaos: network closed")
	}
	key := msg.From + "\x00" + msg.To
	st := n.pairs[key]
	if st == nil {
		st = &pairState{}
		n.pairs[key] = st
	}
	seq := st.seq
	st.seq++
	pairHash := fnv1a(key)
	delay, dup, dupDelay := schedule(prof, n.opts.Seed, pairHash, seq, len(msg.Payload))
	now := time.Now()
	due := now.Add(delay)
	// Partition deferral: a delivery that would land inside a partition
	// window waits for the heal.
	if heal := n.healAfter(msg.From, msg.To, due.Sub(n.start)); heal > 0 {
		due = n.start.Add(heal)
	}
	// Per-pair FIFO.
	if due.Before(st.nextDue) {
		due = st.nextDue
	}
	st.nextDue = due
	if n.opts.Record {
		n.trace = append(n.trace, Delivery{From: msg.From, To: msg.To, Seq: seq,
			Kind: msg.Kind, Round: msg.Round, Delay: delay})
	}
	// wg.Add under the same lock that Close takes before wg.Wait: a
	// Send either observes closed (and spawns nothing) or registers its
	// delivery before Close can start waiting — the race the old Flaky
	// wrapper had.
	n.wg.Add(1)
	prev, done := st.last, make(chan struct{})
	st.last = done
	go n.deliver(msg, due, prev, done)
	if dup {
		dupDue := now.Add(dupDelay)
		if dupDue.Before(st.nextDue) {
			dupDue = st.nextDue
		}
		st.nextDue = dupDue
		if n.opts.Record {
			n.trace = append(n.trace, Delivery{From: msg.From, To: msg.To, Seq: seq,
				Kind: msg.Kind, Round: msg.Round, Delay: dupDelay, Dup: true})
		}
		n.wg.Add(1)
		prev, done = st.last, make(chan struct{})
		st.last = done
		go n.deliver(msg, dupDue, prev, done)
	}
	n.mu.Unlock()
	return nil
}

// deliver sleeps until the message's due time, waits for the link's
// previous delivery, and forwards to the inner transport, collecting
// rather than swallowing the error.
func (n *Net) deliver(msg transport.Message, due time.Time, prev, done chan struct{}) {
	defer n.wg.Done()
	defer close(done)
	if d := time.Until(due); d > 0 {
		time.Sleep(d)
	}
	if prev != nil {
		<-prev
	}
	if err := n.inner.Send(msg); err != nil {
		n.mu.Lock()
		n.errs = append(n.errs, fmt.Errorf("chaos: deliver %v %s→%s: %w", msg.Kind, msg.From, msg.To, err))
		n.mu.Unlock()
	}
}

// Recv implements Network, delegating to the inner transport.
func (n *Net) Recv(ctx context.Context, node string) (transport.Message, error) {
	return n.inner.Recv(ctx, node)
}

// SetPeers implements Transport.
func (n *Net) SetPeers(peers map[string]string) { n.inner.SetPeers(peers) }

// Addr implements Transport.
func (n *Net) Addr() string { return n.inner.Addr() }

// Stats implements Transport.
func (n *Net) Stats() *transport.Stats { return n.inner.Stats() }

// Wait blocks until every in-flight delayed delivery has been handed to
// the inner transport, without closing anything.
func (n *Net) Wait() { n.wg.Wait() }

// Err returns the inner-send errors collected so far, joined.
func (n *Net) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return errors.Join(n.errs...)
}

// Trace returns the recorded schedule, sorted by (From, To, Seq, Dup) —
// a canonical order independent of goroutine interleaving, directly
// comparable between runs and across transports. Empty unless
// Options.Record was set.
func (n *Net) Trace() []Delivery {
	n.mu.Lock()
	out := append([]Delivery(nil), n.trace...)
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return !a.Dup && b.Dup
	})
	return out
}

// Close implements Transport: refuses further Sends, drains the
// in-flight deliveries, closes the inner transport, and reports every
// delivery error the drain surfaced.
func (n *Net) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
	errs := []error{n.Err()}
	errs = append(errs, n.inner.Close())
	return errors.Join(errs...)
}
