package chaos

import (
	"context"
	"testing"
	"time"

	"acme/internal/transport"
	"acme/internal/wire"
)

// partitionWindow isolates dev from edge for the first 150ms of the
// net's life: everything the device sends is held at the link head and
// delivered, in order, at the heal.
const partitionHeal = 150 * time.Millisecond

func partitionOptions() Options {
	return Options{
		Seed:       11,
		Default:    Profile{Jitter: time.Millisecond},
		Partitions: []Window{{A: "dev", B: "edge", Start: 0, End: partitionHeal}},
	}
}

type partitionOutcome struct {
	epochDelta uint64
	alive      bool
	gathered   int
	verbs      []wire.ControlType
	wall       time.Duration
}

// runPartitionScenario partitions a device from its edge, has the
// device emit LEAVE → RESYNC-REQUEST → round-0 upload into the
// partition, and gathers on the edge. The chaos net must hold all three
// until the heal and release them in program order, so the edge's fleet
// registry sees the departure and the MEMBER-BACK recovery back to
// back.
func runPartitionScenario(t *testing.T, edge *transport.Session, devNet transport.Network) partitionOutcome {
	t.Helper()
	seedEpoch := edge.Membership().Seed(map[string]int{"dev": 0})

	send := func(rec wire.ControlRecord) {
		payload, err := wire.EncodeControl(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := devNet.Send(transport.Message{
			Kind: transport.KindControl, From: "dev", To: "edge",
			Round: rec.Round, Payload: payload,
		}); err != nil {
			t.Fatal(err)
		}
	}
	send(wire.ControlRecord{Type: wire.ControlLeave, Node: "dev", Device: 0})
	send(wire.ControlRecord{Type: wire.ControlResyncRequest, Node: "dev", Device: 0, Round: 0})
	if err := devNet.Send(transport.Message{
		Kind: transport.KindImportanceSet, From: "dev", To: "edge",
		Round: 0, Payload: []byte{1, 2, 3, 4},
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var out partitionOutcome
	res, err := edge.Gather(ctx, transport.GatherSpec{
		Round:  0,
		Kinds:  []transport.Kind{transport.KindImportanceSet},
		Expect: []string{"dev"},
		Label:  "partition-heal",
		OnMessage: func(msg transport.Message) error {
			out.gathered++
			return nil
		},
		OnControl: func(msg transport.Message, rec wire.ControlRecord) (bool, error) {
			out.verbs = append(out.verbs, rec.Type)
			return false, nil
		},
	})
	if err != nil {
		t.Fatalf("gather across partition: %v", err)
	}
	out.wall = res.Wall
	out.epochDelta = edge.Membership().Epoch() - seedEpoch
	if m, ok := edge.Membership().Lookup("dev"); ok {
		out.alive = m.Alive
	}
	return out
}

func checkPartitionOutcome(t *testing.T, label string, out partitionOutcome) {
	t.Helper()
	// LEAVE bumps (departure), RESYNC-REQUEST bumps again (rejoin):
	// exactly two epoch movements, ending alive — MEMBER-BACK recovery.
	if out.epochDelta != 2 {
		t.Fatalf("%s: registry epoch moved %d times across partition+heal, want 2 (leave, rejoin)", label, out.epochDelta)
	}
	if !out.alive {
		t.Fatalf("%s: device not alive after heal — rejoin record lost or reordered", label)
	}
	if out.gathered != 1 {
		t.Fatalf("%s: gathered %d uploads, want 1", label, out.gathered)
	}
	want := []wire.ControlType{wire.ControlLeave, wire.ControlResyncRequest}
	if len(out.verbs) != len(want) || out.verbs[0] != want[0] || out.verbs[1] != want[1] {
		t.Fatalf("%s: control verbs %v, want %v (per-pair order through the heal)", label, out.verbs, want)
	}
	// The gather must actually have waited for the heal: if the upload
	// leaked through the partition the wall time collapses.
	if out.wall < partitionHeal/2 {
		t.Fatalf("%s: gather finished in %v, before the %v heal — partition did not hold", label, out.wall, partitionHeal)
	}
}

func TestPartitionHealRegistryMemory(t *testing.T) {
	mem := transport.NewMemory()
	mem.Register("edge", 64)
	mem.Register("dev", 64)
	n := New(mem, partitionOptions())
	defer n.Close()
	edge := transport.NewSession("edge", n)
	out := runPartitionScenario(t, edge, n)
	checkPartitionOutcome(t, "memory", out)
}

func TestPartitionHealRegistryTCP(t *testing.T) {
	edgeTCP, err := transport.NewTCP("edge", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer edgeTCP.Close()
	devTCP, err := transport.NewTCP("dev", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	peers := map[string]string{"edge": edgeTCP.Addr(), "dev": devTCP.Addr()}
	edgeTCP.SetPeers(peers)
	devTCP.SetPeers(peers)
	n := New(devTCP, partitionOptions())
	defer n.Close()
	edge := transport.NewSession("edge", edgeTCP)
	out := runPartitionScenario(t, edge, n)
	checkPartitionOutcome(t, "tcp", out)
}

// The two transports must agree on the scenario: same epoch movement,
// same verb order, same gather count. (Delivery *schedules* are already
// pinned byte-for-byte by TestScheduleDeterministicAcrossMemoryAndTCP;
// this pins the protocol-visible recovery.)
func TestPartitionHealMatchesAcrossTransports(t *testing.T) {
	mem := transport.NewMemory()
	mem.Register("edge", 64)
	mem.Register("dev", 64)
	nm := New(mem, partitionOptions())
	defer nm.Close()
	memOut := runPartitionScenario(t, transport.NewSession("edge", nm), nm)

	edgeTCP, err := transport.NewTCP("edge", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer edgeTCP.Close()
	devTCP, err := transport.NewTCP("dev", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	peers := map[string]string{"edge": edgeTCP.Addr(), "dev": devTCP.Addr()}
	edgeTCP.SetPeers(peers)
	devTCP.SetPeers(peers)
	nt := New(devTCP, partitionOptions())
	defer nt.Close()
	tcpOut := runPartitionScenario(t, transport.NewSession("edge", edgeTCP), nt)

	if memOut.epochDelta != tcpOut.epochDelta || memOut.alive != tcpOut.alive ||
		memOut.gathered != tcpOut.gathered || len(memOut.verbs) != len(tcpOut.verbs) {
		t.Fatalf("recovery diverges across transports:\n  memory %+v\n  tcp    %+v", memOut, tcpOut)
	}
	for i := range memOut.verbs {
		if memOut.verbs[i] != tcpOut.verbs[i] {
			t.Fatalf("control verb %d diverges: memory %v, tcp %v", i, memOut.verbs[i], tcpOut.verbs[i])
		}
	}
}
