package sched

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"acme/internal/fleet"
)

// mapSource serves fixed telemetry per node.
type mapSource map[string]Telemetry

func (m mapSource) Telemetry(node string, round int) Telemetry { return m[node] }

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("device-%d", i)
	}
	return out
}

// TestUniformDelegationProperty is the satellite property test: with
// scoring disabled (Uniform, or no telemetry source) the scheduler
// must reproduce fleet.Sampler's draws exactly — any weights, any
// frac, any round, any live set.
func TestUniformDelegationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		frac := rng.Float64() * 1.2 // include disabled fracs
		seed := rng.Int63()
		round := rng.Intn(50)
		n := rng.Intn(12)
		live := names(n)
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		ref := fleet.Sampler{Frac: frac, Seed: seed}.Sample(round, live)
		for _, s := range []*Scheduler{
			{Frac: frac, Seed: seed, Uniform: true, Weights: FlatWeights(), Source: mapSource{}},
			{Frac: frac, Seed: seed}, // no source at all
		} {
			got := s.Sample(round, live)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("trial %d: scheduler draw %v != sampler draw %v", trial, got, ref)
			}
		}
	}
}

func TestSampleDeterministicUnderInputOrder(t *testing.T) {
	src := mapSource{}
	live := names(8)
	rng := rand.New(rand.NewSource(7))
	for _, nm := range live {
		src[nm] = Telemetry{
			Gain: rng.Float64(), Staleness: float64(rng.Intn(4)),
			UpBytes: 1000 + 5000*rng.Float64(), Warm: rng.Intn(2) == 0,
			WallSeconds: 0.01 * rng.Float64(), LatencyPrior: rng.Float64(),
			Energy: 100 * rng.Float64(),
		}
	}
	s := &Scheduler{Frac: 0.5, Seed: 11, Source: src}
	ref := s.Sample(3, live)
	if len(ref) != 4 {
		t.Fatalf("want 4 picks, got %v", ref)
	}
	if !sort.StringsAreSorted(ref) {
		t.Fatalf("picks not sorted: %v", ref)
	}
	for trial := 0; trial < 20; trial++ {
		shuf := append([]string(nil), live...)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		if got := s.Sample(3, shuf); !reflect.DeepEqual(got, ref) {
			t.Fatalf("input order changed the pick: %v vs %v", got, ref)
		}
	}
}

func TestSampleAvoidsStraggler(t *testing.T) {
	src := mapSource{}
	live := names(6)
	for _, nm := range live {
		src[nm] = Telemetry{Gain: 0.5, Staleness: 1, UpBytes: 1000, Warm: true, WallSeconds: 0.01, Energy: 50}
	}
	// One member is two orders of magnitude slower than the fleet
	// median — well past the slowness-class guard band.
	tel := src["device-3"]
	tel.WallSeconds = 1.0
	src["device-3"] = tel
	s := &Scheduler{Frac: 0.5, Seed: 1, Source: src}
	for round := 0; round < 6; round++ {
		for _, nm := range s.Sample(round, live) {
			if nm == "device-3" {
				t.Fatalf("round %d picked the straggler", round)
			}
		}
	}
}

func TestSamplePrefersWarmChains(t *testing.T) {
	src := mapSource{}
	live := names(6)
	for i, nm := range live {
		warm := i < 3
		tel := Telemetry{Gain: 0.5, Staleness: 1, UpBytes: 1000, Warm: warm, WallSeconds: 0.01, Energy: 50}
		if !warm {
			tel.Staleness = 2
			tel.UpBytes = 9000 // stale EWMA from its last dense upload
		}
		src[nm] = tel
	}
	picks := (&Scheduler{Frac: 0.5, Seed: 5, Weights: Weights{Bytes: 1}, Source: src}).Sample(2, live)
	want := []string{"device-0", "device-1", "device-2"}
	if !reflect.DeepEqual(picks, want) {
		t.Fatalf("bytes-weighted pick %v, want the warm chains %v", picks, want)
	}
}

func TestSampleStalenessPreventsStarvation(t *testing.T) {
	src := mapSource{}
	live := names(4)
	for i, nm := range live {
		tel := Telemetry{Gain: 0.4, Staleness: 1, UpBytes: 1000, Warm: true, WallSeconds: 0.01, Energy: 50}
		if i == 3 {
			// Long-idle member: same movement history, much staler.
			tel.Staleness = 8
			tel.Warm = false
			tel.UpBytes = 0
		}
		src[nm] = tel
	}
	picks := (&Scheduler{Frac: 0.25, Seed: 2, Weights: Weights{Gain: 1}, Source: src}).Sample(9, live)
	if !reflect.DeepEqual(picks, []string{"device-3"}) {
		t.Fatalf("gain-weighted pick %v, want the stale member", picks)
	}
}

func TestSampleNonFiniteTelemetry(t *testing.T) {
	src := mapSource{}
	live := names(5)
	for i, nm := range live {
		tel := Telemetry{Gain: 0.5, Staleness: 1, UpBytes: 1000, Warm: true, WallSeconds: 0.01, Energy: 50}
		switch i {
		case 0:
			tel.Energy = math.NaN()
		case 1:
			tel.Energy = math.Inf(1)
			tel.Gain = math.NaN()
		}
		src[nm] = tel
	}
	s := &Scheduler{Frac: 0.6, Seed: 3, Source: src}
	ref := s.Sample(1, live)
	if len(ref) != 3 {
		t.Fatalf("want 3 picks, got %v", ref)
	}
	for trial := 0; trial < 5; trial++ {
		if got := s.Sample(1, live); !reflect.DeepEqual(got, ref) {
			t.Fatalf("non-finite telemetry broke determinism: %v vs %v", got, ref)
		}
	}
	// The poisoned members pin to the worst energy cell and must lose
	// to an otherwise-identical finite member under energy weighting.
	picks := (&Scheduler{Frac: 0.4, Seed: 3, Weights: Weights{Energy: 1}, Source: src}).Sample(1, live)
	for _, nm := range picks {
		if nm == "device-0" || nm == "device-1" {
			t.Fatalf("energy-weighted pick %v includes a non-finite member", picks)
		}
	}
}

func TestParseWeights(t *testing.T) {
	cases := []struct {
		in   string
		want Weights
		err  bool
	}{
		{"", Weights{}, false},
		{"1,2,0.5,1", Weights{Gain: 1, Bytes: 2, Latency: 0.5, Energy: 1}, false},
		{"gain=2", Weights{Gain: 2, Bytes: 1, Latency: 1, Energy: 1}, false},
		{"gain=2,energy=0", Weights{Gain: 2, Bytes: 1, Latency: 1, Energy: 0}, false},
		{"1,2", Weights{}, true},
		{"1,2,3,4,5", Weights{}, true},
		{"speed=1", Weights{}, true},
		{"gain=-1", Weights{}, true},
		{"gain=NaN", Weights{}, true},
	}
	for _, c := range cases {
		got, err := ParseWeights(c.in)
		if (err != nil) != c.err {
			t.Fatalf("ParseWeights(%q) err=%v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseWeights(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	w, err := ParseWeights(FlatWeights().String())
	if err != nil || w != FlatWeights() {
		t.Fatalf("String round-trip: %+v, %v", w, err)
	}
}

func TestWeightsZeroValueIsFlat(t *testing.T) {
	if (Weights{}).vec() != [numObj]float64{1, 1, 1, 1} {
		t.Fatalf("zero-value weights must normalize to flat")
	}
}
