// Package sched turns per-round participation from a uniform draw into
// a scored choice: every live member is a point in a four-objective
// space — expected information gain (importance-delta movement ×
// staleness, maximized), predicted upload bytes, gather latency, and
// per-round energy spend (all minimized) — and the round's subset is
// picked from the non-dominated frontier of that space using the same
// grid-dominance idiom as internal/pareto's Phase-1 optimizer (Eq.
// 11–13): objectives are quantized onto a K-interval grid, dominated
// cells are peeled front by front, and within a front members are
// ranked by weighted grid distance to the all-ones ideal point.
//
// The scheduler is a drop-in replacement for fleet.Sampler behind the
// same determinism contract: the pick depends only on (Seed, round,
// live set, telemetry), telemetry is fed through round-gated
// deterministic series (see fleet.Registry), and ties break by a
// seeded per-round hash then node name — so every process of a
// distributed run derives the same subset, over memory and TCP alike.
// With scoring disabled (Uniform, or no telemetry source) it delegates
// verbatim to fleet.Sampler, byte-for-byte reproducing the uniform
// draws that the repo's continuity configs pin.
package sched

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"acme/internal/fleet"
)

// Objective indices into Weights and the candidate objective vector.
const (
	objGain    = 0 // expected information gain (negated: minimized)
	objBytes   = 1 // predicted upload bytes
	objLatency = 2 // gather latency (slowness class + deterministic prior)
	objEnergy  = 3 // per-round training energy
	numObj     = 4
)

// Weights scales the four scheduling objectives. A weight of zero
// removes the objective from dominance and distance entirely; the zero
// value (all zeros) means flat — every objective at weight 1.
type Weights struct {
	Gain    float64
	Bytes   float64
	Latency float64
	Energy  float64
}

// FlatWeights returns the all-ones default.
func FlatWeights() Weights { return Weights{Gain: 1, Bytes: 1, Latency: 1, Energy: 1} }

// vec returns the weights as an indexable vector, mapping the all-zero
// zero value to flat.
func (w Weights) vec() [numObj]float64 {
	v := [numObj]float64{w.Gain, w.Bytes, w.Latency, w.Energy}
	for _, x := range v {
		if x > 0 {
			return v
		}
	}
	return [numObj]float64{1, 1, 1, 1}
}

// String renders the weights in ParseWeights' named form.
func (w Weights) String() string {
	return fmt.Sprintf("gain=%g,bytes=%g,latency=%g,energy=%g", w.Gain, w.Bytes, w.Latency, w.Energy)
}

// ParseWeights parses a -sched-weights flag value: either four
// positional comma-separated values "gain,bytes,latency,energy"
// ("1,2,0.5,1") or named pairs ("gain=2,bytes=1"); unnamed objectives
// default to 1. Negative and non-finite weights are rejected.
func ParseWeights(s string) (Weights, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Weights{}, nil
	}
	parts := strings.Split(s, ",")
	named := strings.Contains(parts[0], "=")
	w := Weights{}
	if named {
		w = FlatWeights()
	}
	idx := map[string]*float64{"gain": &w.Gain, "bytes": &w.Bytes, "latency": &w.Latency, "energy": &w.Energy}
	pos := []*float64{&w.Gain, &w.Bytes, &w.Latency, &w.Energy}
	for i, p := range parts {
		p = strings.TrimSpace(p)
		var dst *float64
		var val string
		if named {
			k, v, ok := strings.Cut(p, "=")
			if !ok {
				return Weights{}, fmt.Errorf("sched: weight %q: want name=value", p)
			}
			dst = idx[strings.TrimSpace(k)]
			if dst == nil {
				return Weights{}, fmt.Errorf("sched: unknown objective %q (want gain/bytes/latency/energy)", k)
			}
			val = strings.TrimSpace(v)
		} else {
			if i >= len(pos) {
				return Weights{}, fmt.Errorf("sched: too many positional weights (want %d)", len(pos))
			}
			dst = pos[i]
			val = p
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Weights{}, fmt.Errorf("sched: weight %q: %v", p, err)
		}
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return Weights{}, fmt.Errorf("sched: weight %q must be finite and non-negative", p)
		}
		*dst = f
	}
	if !named && len(parts) != len(pos) {
		return Weights{}, fmt.Errorf("sched: want %d positional weights, got %d", len(pos), len(parts))
	}
	return w, nil
}

// Telemetry is one member's scheduling view for a round, assembled by
// the Source from deterministic series only.
type Telemetry struct {
	// Gain is the member's importance-movement EWMA
	// (fleet.Member.GainEWMA): how much its uploads are still changing.
	Gain float64
	// GainKnown reports whether Gain reflects at least one decoded
	// upload. A member never yet folded has no movement history, and
	// zero would starve it forever — the ranking substitutes the
	// candidate set's best known gain instead (optimism under
	// uncertainty), so staleness growth eventually forces exploration.
	GainKnown bool
	// Staleness is rounds since the member last contributed
	// (round − LastRound); it multiplies Gain so idle members regain
	// attractiveness instead of starving.
	Staleness float64
	// UpBytes is the member's per-contribution wire-byte EWMA.
	UpBytes float64
	// Warm reports whether the member contributed in the immediately
	// preceding round, i.e. its delta chain is intact and UpBytes
	// predicts the next upload. A cold member re-seeds dense, so its
	// predicted cost is the candidate set's worst, not its own EWMA.
	Warm bool
	// WallSeconds is the member's gather arrival-offset EWMA. Measured
	// wall time is transport-dependent, so the scheduler folds it in
	// only through coarse slowness classes (see slowClass).
	WallSeconds float64
	// LatencyPrior is a deterministic per-device latency estimate
	// (energy.Profile.Latency at the cluster backbone) that
	// differentiates heterogeneous hardware without touching the clock.
	LatencyPrior float64
	// Energy is the member's deterministic per-round training energy
	// (energy.Profile.Energy at the cluster backbone).
	Energy float64
}

// Source supplies per-member telemetry. Implementations must be
// deterministic functions of (node, round) given the same run history.
type Source interface {
	Telemetry(node string, round int) Telemetry
}

// Scheduler picks each round's participation subset. Frac and Seed
// carry fleet.Sampler's contract: Frac in (0,1) enables subsetting,
// Size is ceil(Frac×n) clamped to [1,n], and the pick for a round is a
// pure function of the inputs.
type Scheduler struct {
	Frac float64
	Seed int64
	// Weights scales the objectives; zero value = flat.
	Weights Weights
	// Intervals is the dominance grid resolution K per objective
	// (default 8).
	Intervals int
	// Uniform disables scoring: delegate every draw to fleet.Sampler.
	Uniform bool
	// Source supplies telemetry; nil also delegates to fleet.Sampler.
	Source Source
}

// uniform is the embedded reference sampler the scheduler defers to
// for sizing and for unscored draws.
func (s *Scheduler) uniform() fleet.Sampler { return fleet.Sampler{Frac: s.Frac, Seed: s.Seed} }

// Enabled reports whether the scheduler actually subsets.
func (s *Scheduler) Enabled() bool { return s.uniform().Enabled() }

// Size returns the subset size for n live members.
func (s *Scheduler) Size(n int) int { return s.uniform().Size(n) }

// sigma mirrors pareto.Config.Sigma: the σ > 0 keeping Eq. 11's
// interval width positive when an objective is constant.
const sigma = 1e-9

// defaultIntervals is the grid resolution when Intervals is unset.
const defaultIntervals = 8

// Sample returns the round's participation subset of live, sorted.
// Scoring disabled (Uniform or no Source) reproduces fleet.Sampler's
// draw exactly.
func (s *Scheduler) Sample(round int, live []string) []string {
	if s.Uniform || s.Source == nil {
		return s.uniform().Sample(round, live)
	}
	members := append([]string(nil), live...)
	sort.Strings(members)
	if !s.Enabled() || len(members) == 0 {
		return members
	}
	ranked := s.rank(round, members)
	picked := ranked[:s.Size(len(members))]
	sort.Strings(picked)
	return picked
}

// candidate is one member's scored view for a round.
type candidate struct {
	node    string
	obj     [numObj]float64
	coord   [numObj]int
	front   int
	dist    float64
	tie     uint64
	warm    bool
	laggard bool
}

// rank orders members best-first: by Pareto front (grid dominance over
// the active objectives), then weighted grid distance to the ideal
// point, then seeded tie-break, then name.
func (s *Scheduler) rank(round int, members []string) []string {
	w := s.Weights.vec()
	k := s.Intervals
	if k <= 0 {
		k = defaultIntervals
	}
	cands := make([]candidate, len(members))
	var maxBytes, maxPrior, maxGain float64
	tels := make([]Telemetry, len(members))
	for i, nm := range members {
		tel := s.Source.Telemetry(nm, round)
		tels[i] = tel
		if tel.UpBytes > maxBytes {
			maxBytes = tel.UpBytes
		}
		if tel.LatencyPrior > maxPrior {
			maxPrior = tel.LatencyPrior
		}
		if tel.GainKnown && tel.Gain > maxGain {
			maxGain = tel.Gain
		}
	}
	med := medianPositive(tels)
	for i, nm := range members {
		tel := tels[i]
		// Gain (maximize → negate): movement × staleness, with an ε so a
		// member with no history yet still earns credit for going stale.
		// A member whose movement was never measured borrows the
		// candidate set's best known gain (the mirror of the cold-bytes
		// rule below, in the optimistic direction): its expected
		// information is at least as good as anyone's until evidence says
		// otherwise, so the staleness multiplier pulls it in instead of
		// letting measured members monopolize every round.
		g := tel.Gain
		if !tel.GainKnown {
			g = maxGain
		}
		gain := (g + 1e-12) * (1 + tel.Staleness)
		// Bytes: a cold delta chain re-seeds dense, so the prediction
		// for any non-warm (or never-measured) member is the candidate
		// set's worst observed cost, not its own stale EWMA.
		bytes := tel.UpBytes
		if !tel.Warm || bytes <= 0 {
			bytes = maxBytes
		}
		// Latency: integer slowness class relative to the fleet median
		// (transport-robust), plus a sub-class deterministic hardware
		// prior that orders members within a class.
		class := slowClass(tel.WallSeconds, med)
		lat := float64(class)
		if maxPrior > 0 {
			lat += 0.5 * tel.LatencyPrior / maxPrior
		}
		cands[i] = candidate{
			node: nm,
			obj:  [numObj]float64{-gain, bytes, lat, tel.Energy},
			tie:  tieRank(s.Seed, round, nm),
			warm: tel.Warm,
			// Any observed wall past the guard is a deadline-feasibility
			// violation, not a trade-off: the grid normalizes magnitudes
			// away, so a member straggling 100× the median would
			// otherwise look no worse than the cold chain it keeps warm.
			// Mirroring pareto.Select's infeasible handling, laggards
			// rank after every feasible member regardless of score.
			laggard: class >= 1 && w[objLatency] > 0,
		}
	}
	gridCoords(cands, k)
	assignFronts(cands, w)
	for i := range cands {
		var d float64
		for l := 0; l < numObj; l++ {
			if w[l] <= 0 {
				continue
			}
			dd := float64(cands[i].coord[l] - 1)
			d += w[l] * dd * dd
		}
		cands[i].dist = math.Sqrt(d)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.laggard != b.laggard {
			return !a.laggard
		}
		if a.front != b.front {
			return a.front < b.front
		}
		if a.dist != b.dist {
			return a.dist < b.dist
		}
		if a.warm != b.warm {
			// A genuine score tie between a warm chain and a cold one is
			// not a coin flip: continuing the warm chain keeps its delta
			// encoding alive, the cold member pays a dense re-seed either
			// way. Deterministic (Warm is registry-derived), so the picks
			// stay transport-identical.
			return a.warm
		}
		if a.tie != b.tie {
			return a.tie < b.tie
		}
		return a.node < b.node
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.node
	}
	return out
}

// gridCoords quantizes every candidate's objectives onto the K-interval
// grid (Eq. 11–12 generalized to four dimensions): per objective,
// ideal = min and worst = max over the candidates, interval width
// r = (worst − ideal + 2σ)/K, Ψ = ⌈(f − ideal + σ)/r⌉ clamped to
// [1, K]. Non-finite objective values pin to the worst cell.
func gridCoords(cands []candidate, k int) {
	for l := 0; l < numObj; l++ {
		ideal, worst := math.Inf(1), math.Inf(-1)
		for _, c := range cands {
			v := c.obj[l]
			if !isFinite(v) {
				continue
			}
			if v < ideal {
				ideal = v
			}
			if v > worst {
				worst = v
			}
		}
		if ideal > worst {
			// No finite value at all: the objective carries no signal.
			for i := range cands {
				cands[i].coord[l] = 1
			}
			continue
		}
		r := (worst - ideal + 2*sigma) / float64(k)
		for i := range cands {
			v := cands[i].obj[l]
			if !isFinite(v) {
				cands[i].coord[l] = k
				continue
			}
			c := int(math.Ceil((v - ideal + sigma) / r))
			if c < 1 {
				c = 1
			}
			if c > k {
				c = k
			}
			cands[i].coord[l] = c
		}
	}
}

// assignFronts peels non-dominated fronts: front 0 is the grid-Pareto
// frontier over the active (positively weighted) objectives, front 1
// the frontier of the rest, and so on.
func assignFronts(cands []candidate, w [numObj]float64) {
	remaining := make([]int, len(cands))
	for i := range remaining {
		remaining[i] = i
	}
	for front := 0; len(remaining) > 0; front++ {
		var keep, peeled []int
		for _, i := range remaining {
			dominated := false
			for _, j := range remaining {
				if i != j && gridDominates(cands[j].coord, cands[i].coord, w) {
					dominated = true
					break
				}
			}
			if dominated {
				keep = append(keep, i)
			} else {
				peeled = append(peeled, i)
			}
		}
		for _, i := range peeled {
			cands[i].front = front
		}
		remaining = keep
	}
}

// gridDominates reports whether a's coordinates dominate b's over the
// active objectives: ≤ everywhere, < somewhere.
func gridDominates(a, b [numObj]int, w [numObj]float64) bool {
	strict := false
	for l := 0; l < numObj; l++ {
		if w[l] <= 0 {
			continue
		}
		if a[l] > b[l] {
			return false
		}
		if a[l] < b[l] {
			strict = true
		}
	}
	return strict
}

// slowClass quantizes a measured wall EWMA into a coarse slowness
// class relative to the fleet's median positive EWMA: 0 for anything
// within guard× the median (ordinary scheduling and transport jitter),
// then one class per further doubling. Only classes — never raw wall
// values — enter the objective, so the same run picks identically over
// memory and TCP even though the measured offsets differ.
func slowClass(wall, median float64) int {
	const guard = 8
	if !isFinite(wall) {
		// An unmeasurable wall can't prove the member fast: first class
		// past the guard.
		return 1
	}
	if median <= 0 || wall <= guard*median {
		return 0
	}
	return 1 + int(math.Log2(wall/(guard*median)))
}

// medianPositive returns the median of the members' positive wall
// EWMAs — members never yet measured don't drag the reference down.
func medianPositive(tels []Telemetry) float64 {
	vals := make([]float64, 0, len(tels))
	for _, t := range tels {
		if t.WallSeconds > 0 {
			vals = append(vals, t.WallSeconds)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// tieRank mixes the scheduler seed, round, and node name through a
// splitmix64 finalizer: the seeded tie-break that keeps equal-scored
// members from resolving by list position.
func tieRank(seed int64, round int, node string) uint64 {
	h := uint64(14695981039346656037) // FNV-64a offset basis
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= 1099511628211
	}
	z := uint64(seed) ^ (0x9e3779b97f4a7c15 * uint64(round+1)) ^ h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
