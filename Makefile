# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race bench bench-json bench-json3 bench-compare fuzz fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/transport/... ./internal/wire/... ./internal/tensor/... ./internal/aggregate/... ./internal/importance/...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/tensor ./internal/wire ./internal/core ./internal/aggregate ./internal/importance

# bench-json regenerates BENCH_4.json: the symmetric Phase 2-2
# exchange trajectory — importance uplink + personalized-set downlink
# bytes (memory and loopback-TCP transports) and the incremental
# device-compute cut — for dense/delta × lossless/mixed on the default
# scenario.
bench-json:
	$(GO) run ./cmd/acmebench -exp bench4 -bench4json BENCH_4.json

# bench-json3 regenerates the PR 3 trajectory (uplink only).
bench-json3:
	$(GO) run ./cmd/acmebench -exp bench3 -benchjson BENCH_3.json

# bench-compare diffs the two newest checked-in BENCH_*.json files and
# fails on any >10% wire-byte regression.
bench-compare:
	$(GO) run ./cmd/benchcmp

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=20s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=20s ./internal/transport

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test race bench bench-compare
