# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race bench fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/transport/... ./internal/tensor/...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/tensor

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test race bench
