# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race bench bench-json bench-json3 bench-json4 bench-json5 bench-json6 bench-json7 bench-json8 bench-json9 bench-compare churn-smoke fleet-smoke chaos-smoke restore-smoke sched-smoke fuzz fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/transport/... ./internal/wire/... ./internal/tensor/... ./internal/aggregate/... ./internal/importance/...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/tensor ./internal/wire ./internal/core ./internal/aggregate ./internal/importance

# bench-json regenerates BENCH_10.json: the Pareto round scheduler vs
# the uniform participation draw under a straggling heterogeneous fleet
# (bytes per accuracy point, gated strictly under the uniform baseline),
# the kill/restore equivalence trial over a participation-sampled fleet,
# and the BENCH_7 continuity configs (dense/delta wire bytes, must stay
# byte-identical).
bench-json:
	$(GO) run ./cmd/acmebench -exp bench10 -bench10json BENCH_10.json

# bench-json9 regenerates the PR 9 crash-tolerance trajectory.
bench-json9:
	$(GO) run ./cmd/acmebench -exp bench9 -bench9json BENCH_9.json

# bench-json8 regenerates the PR 8 adversarial-matrix trajectory.
bench-json8:
	$(GO) run ./cmd/acmebench -exp bench8 -bench8json BENCH_8.json

# bench-json7 regenerates the PR 7 wire-floor trajectory.
bench-json7:
	$(GO) run ./cmd/acmebench -exp bench7 -bench7json BENCH_7.json

# bench-json6 regenerates the PR 6 fleet-sampling trajectory.
bench-json6:
	$(GO) run ./cmd/acmebench -exp bench6 -bench6json BENCH_6.json

# bench-json5 regenerates the PR 5 straggler-cutoff trajectory.
bench-json5:
	$(GO) run ./cmd/acmebench -exp bench5 -bench5json BENCH_5.json

# bench-json3 regenerates the PR 3 trajectory (uplink only).
bench-json3:
	$(GO) run ./cmd/acmebench -exp bench3 -benchjson BENCH_3.json

# bench-json4 regenerates the PR 4 symmetric-exchange trajectory.
bench-json4:
	$(GO) run ./cmd/acmebench -exp bench4 -bench4json BENCH_4.json

# bench-compare diffs the two newest checked-in BENCH_*.json files and
# fails on any >10% wire-byte regression.
bench-compare:
	$(GO) run ./cmd/benchcmp

# churn-smoke kills one device mid-run over loopback TCP and rejoins it
# via the dense-resync control path, asserting the run completes with
# every device reporting and the exchange back to sparse deltas. The
# 20-iteration stress loop guards the rejoin path's timing races (the
# flake fixed in PR 8 only reproduced once in tens of runs).
churn-smoke:
	$(GO) test -run 'TestChurnRejoinTCP' -count=20 -failfast -timeout 1200s ./internal/core

# chaos-smoke runs one adversarial trial over loopback TCP: seeded link
# chaos on every device link, one inflating device, detection armed —
# asserting the liar is flagged, evicted via MEMBER-GONE, and the run
# completes with every honest device reporting.
chaos-smoke:
	$(GO) test -run 'TestByzantineDetectTCP' -count=1 -v ./internal/core

# fleet-smoke runs a 2000-device fleet (8 edges × 250 devices, shared
# read-only data shards) in one process at -sample-frac 0.05, asserting
# every round invites exactly the sampled count and all devices report.
fleet-smoke:
	$(GO) test -run 'TestFleetSmoke' -count=1 -v ./internal/core

# restore-smoke kills an edge mid-loop over loopback TCP (sockets torn
# down), restarts it on the same address, and restores it from its
# durable checkpoint — asserting the finished run's reports are
# bitwise-identical to the same seeded run left uninterrupted.
restore-smoke:
	$(GO) test -run 'TestRestoreSmokeTCP' -count=1 -v -timeout 600s ./internal/core

# sched-smoke runs the Pareto round scheduler against the uniform draw
# over loopback TCP: picks must be identical across transports and two
# seeded runs, and an observed straggler must never be re-invited.
sched-smoke:
	$(GO) test -run 'TestSchedulerDeterminismMemory|TestSchedSmokeTCP' -count=1 -v -timeout 600s ./internal/core

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=20s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=20s ./internal/transport
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=20s ./internal/checkpoint

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test race bench bench-compare churn-smoke fleet-smoke chaos-smoke restore-smoke sched-smoke
