# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race bench bench-json fuzz fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/transport/... ./internal/wire/... ./internal/tensor/... ./internal/aggregate/...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/tensor ./internal/wire ./internal/core ./internal/aggregate

# bench-json regenerates BENCH_3.json: the Phase 2-2 importance
# exchange trajectory (upload bytes and edge aggregation latency by
# round) for dense/delta × lossless/mixed on the default scenario.
bench-json:
	$(GO) run ./cmd/acmebench -exp bench3 -benchjson BENCH_3.json

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=20s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=20s ./internal/transport

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test race bench
