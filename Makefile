# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race bench bench-json bench-json3 bench-json4 bench-json5 bench-json6 bench-compare churn-smoke fleet-smoke fuzz fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/transport/... ./internal/wire/... ./internal/tensor/... ./internal/aggregate/... ./internal/importance/...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/tensor ./internal/wire ./internal/core ./internal/aggregate ./internal/importance

# bench-json regenerates BENCH_7.json: the wire-floor trajectory —
# per-kind wire bytes with/without the entropy coder, the bulk entropy
# ratio, and fast-vs-reflect decode microbenchmarks — plus the BENCH_6
# continuity configs (dense/delta wire bytes, entropy off,
# byte-identical).
bench-json:
	$(GO) run ./cmd/acmebench -exp bench7 -bench7json BENCH_7.json

# bench-json6 regenerates the PR 6 fleet-sampling trajectory.
bench-json6:
	$(GO) run ./cmd/acmebench -exp bench6 -bench6json BENCH_6.json

# bench-json5 regenerates the PR 5 straggler-cutoff trajectory.
bench-json5:
	$(GO) run ./cmd/acmebench -exp bench5 -bench5json BENCH_5.json

# bench-json3 regenerates the PR 3 trajectory (uplink only).
bench-json3:
	$(GO) run ./cmd/acmebench -exp bench3 -benchjson BENCH_3.json

# bench-json4 regenerates the PR 4 symmetric-exchange trajectory.
bench-json4:
	$(GO) run ./cmd/acmebench -exp bench4 -bench4json BENCH_4.json

# bench-compare diffs the two newest checked-in BENCH_*.json files and
# fails on any >10% wire-byte regression.
bench-compare:
	$(GO) run ./cmd/benchcmp

# churn-smoke kills one device mid-run over loopback TCP and rejoins it
# via the dense-resync control path, asserting the run completes with
# every device reporting and the exchange back to sparse deltas.
churn-smoke:
	$(GO) test -run 'TestChurnRejoinTCP' -count=1 -v ./internal/core

# fleet-smoke runs a 2000-device fleet (8 edges × 250 devices, shared
# read-only data shards) in one process at -sample-frac 0.05, asserting
# every round invites exactly the sampled count and all devices report.
fleet-smoke:
	$(GO) test -run 'TestFleetSmoke' -count=1 -v ./internal/core

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=20s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=20s ./internal/transport

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test race bench bench-compare churn-smoke fleet-smoke
