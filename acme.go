// Package acme is the public API of this reproduction of "ACME:
// Adaptive Customization of Large Models via Distributed Systems"
// (Dai, Qiu, Gao, Zhao, Wang — ICDCS 2025).
//
// ACME customizes Transformer-based models for fleets of heterogeneous
// devices through a bidirectional single-loop distributed system:
//
//   - the cloud server prunes and distills a reference backbone into
//     (width, depth) variants and assigns each edge cluster the most
//     cost-efficient one via a Pareto Front Grid over
//     (loss, energy, size) under the cluster's storage constraint
//     (Phase 1);
//   - each edge server searches a classification header matched to its
//     backbone with an ENAS-style LSTM controller (Phase 2-1);
//   - devices refine the header on local data, exchanging Taylor
//     importance sets that the edge aggregates with Wasserstein-distance
//     similarity weights (Phase 2-2).
//
// Quick start:
//
//	cfg := acme.DefaultConfig()
//	cfg.EdgeServers = 2
//	res, err := acme.Run(context.Background(), cfg)
//	if err != nil { ... }
//	fmt.Println(res.MeanAccuracyFinal())
//
// The heavy lifting lives in internal packages (nn, prune, pareto, nas,
// wasserstein, aggregate, transport, core); this package re-exports the
// configuration surface and the system runner.
package acme

import (
	"context"

	"acme/internal/core"
	"acme/internal/data"
	"acme/internal/fleet"
	"acme/internal/sched"
	"acme/internal/transport"
)

// Config assembles every knob of a full ACME run. See core.Config for
// field documentation.
type Config = core.Config

// WireOptions groups the payload-shaping knobs (Config.Wire): codec,
// quantization, and the delta/top-k sparsification schemes.
type WireOptions = core.WireOptions

// StragglerPolicy groups the round-scoped straggler cutoff and the
// deterministic slow-device injection (Config.Straggler).
type StragglerPolicy = core.StragglerPolicy

// FleetOptions groups the fleet topology and the per-round
// participation sampling (Config.Fleet).
type FleetOptions = core.FleetOptions

// SchedulerOptions selects how each round's participation subset is
// drawn (Config.Fleet.Scheduler): the uniform seeded sample, or the
// Pareto-frontier scheduler scoring members over information gain,
// bytes, latency, and energy.
type SchedulerOptions = core.SchedulerOptions

// SchedulerWeights scales the scheduler's four objectives; the zero
// value means flat. Parse flag strings with ParseSchedulerWeights.
type SchedulerWeights = sched.Weights

// ParseSchedulerWeights parses a -sched-weights style flag value:
// positional "gain,bytes,latency,energy" or named "gain=2,bytes=1".
func ParseSchedulerWeights(s string) (SchedulerWeights, error) { return sched.ParseWeights(s) }

// ByzantineOptions injects adversarial devices into the fleet
// (Config.Fleet.Byzantine): the first Count device IDs corrupt their
// importance uploads with a seeded strategy.
type ByzantineOptions = core.ByzantineOptions

// DetectOptions arms the edge-side statistical screen against
// Byzantine uploads (Config.Fleet.Detect): Wasserstein anomaly
// scoring, suspect exclusion, and strike-limit eviction.
type DetectOptions = core.DetectOptions

// ChaosOptions wraps the run's in-memory transport in the seeded
// link-fault model (Config.Chaos): per-pair delays, jitter, spikes,
// and bandwidth serialization — timing only, never payloads.
type ChaosOptions = core.ChaosOptions

// CheckpointOptions arms durable checkpoint/restore of mid-flight
// sessions (Config.Checkpoint): versioned, CRC-guarded snapshots at
// round boundaries, restored with System.ResumeRole.
type CheckpointOptions = core.CheckpointOptions

// FleetMember is one registered device in a session's membership
// registry: liveness, epoch of the last change, and per-round traffic
// history.
type FleetMember = fleet.Member

// FleetRegistry is the epoch-stamped membership registry the session
// control plane feeds and the edges sample participation subsets from.
type FleetRegistry = fleet.Registry

// Result aggregates the outcome of one run: per-device reports,
// backbone assignments, and measured traffic.
type Result = core.Result

// DeviceReport is one device's final metrics.
type DeviceReport = core.DeviceReport

// System is a configured fleet ready to Run.
type System = core.System

// AggregationMethod selects the Phase 2-2 weighting scheme.
type AggregationMethod = core.AggregationMethod

// Aggregation methods for Config.Aggregation.
const (
	AggregateWasserstein = core.AggregateWasserstein // ACME
	AggregateJS          = core.AggregateJS
	AggregateAverage     = core.AggregateAverage
	AggregateAlone       = core.AggregateAlone
)

// QuantMode selects the wire precision of model-parameter and
// importance payloads (Config.Wire.Quantization).
type QuantMode = core.QuantMode

// Quantization modes for Config.Wire.Quantization.
const (
	QuantLossless = core.QuantLossless // exact payloads (default)
	QuantFloat16  = core.QuantFloat16  // IEEE half precision, 4× smaller params
	QuantInt8     = core.QuantInt8     // scaled signed bytes, 8× smaller params
	QuantMixed    = core.QuantMixed    // per-layer float16/int8: mass-ranked importance, error-tested params
)

// ParseQuantMode resolves a quantization mode from its flag name
// (lossless, float16, int8, mixed).
func ParseQuantMode(s string) (QuantMode, error) { return core.ParseQuantMode(s) }

// Phase2RoundStat traces one edge round of the Phase 2-2 importance
// loop (Result.Phase2Rounds): uplink and downlink bytes, dense vs
// delta message counts in both directions, and edge busy time.
type Phase2RoundStat = core.Phase2RoundStat

// DeviceRoundStat traces one device round of the loop
// (Result.DeviceRounds): critical-path importance compute vs batches
// folded while the upload was in flight.
type DeviceRoundStat = core.DeviceRoundStat

// MessageKind tags the protocol message types (see Result.Stats
// per-kind accounting).
type MessageKind = transport.Kind

// TrafficStats aggregates per-kind wire/raw byte counters.
type TrafficStats = transport.Stats

// ConfusionLevel indexes the non-IID data-difficulty ladder.
type ConfusionLevel = data.ConfusionLevel

// Confusion levels for Config.Level.
const (
	IID = data.IID
	C1  = data.C1
	C2  = data.C2
	C3  = data.C3
)

// DefaultConfig returns a micro-scale configuration that runs a full
// pipeline in seconds.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewSystem validates cfg and materializes the fleet, datasets, and
// in-memory network.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Run executes the full three-tier pipeline and returns the result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return sys.Run(ctx)
}

// Network moves protocol messages between named nodes. The in-memory
// implementation is used by Run; NewTCPNetwork provides a socket-backed
// one for multi-process deployments.
type Network = transport.Network

// Transport is the full substrate contract — Network plus peer-table
// rebinding, addressing, traffic counters, and Close — implemented by
// the in-memory, TCP, and fault-injecting networks alike.
type Transport = transport.Transport

// Session is the session-oriented API over a Network: the typed
// control plane (JOIN / LEAVE / RESYNC-REQUEST / ROUND-CUTOFF) and the
// round-scoped Gather primitive with straggler quorum and deadline.
type Session = transport.Session

// NewSession binds a session for the named node over net.
func NewSession(node string, net Network) *Session { return transport.NewSession(node, net) }

// TCPNetwork is a socket-backed Network with supervised per-peer
// links: reconnect with capped exponential backoff, connection reuse
// via the JOIN handshake, LEAVE on close; close it when done.
type TCPNetwork = transport.TCP

// NewTCPNetwork starts a TCP network node for the named role listening
// on addr, with peers mapping every role name to its address.
func NewTCPNetwork(node, addr string, peers map[string]string) (*TCPNetwork, error) {
	return transport.NewTCP(node, addr, peers)
}

// NewSystemWithNetwork builds the system over a caller-provided network
// (e.g. a TCPNetwork). Every participating process must use an
// identical Config, then call System.RunRole for its own role.
func NewSystemWithNetwork(cfg Config, net Network) (*System, error) {
	return core.NewSystemWithNetwork(cfg, net)
}
