// Non-IID personalization: the Phase-2-2 story. One uniform device
// cluster with two underlying data distributions runs the single-loop
// refinement under each aggregation scheme; compare how much accuracy
// the loop adds on non-IID data.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"acme"
)

func main() {
	methods := []struct {
		name   string
		method acme.AggregationMethod
	}{
		{"alone (no collaboration)", acme.AggregateAlone},
		{"uniform average", acme.AggregateAverage},
		{"jensen-shannon", acme.AggregateJS},
		{"wasserstein (ACME)", acme.AggregateWasserstein},
	}

	fmt.Println("Phase 2-2 aggregation methods on non-IID (C2) device data:")
	for _, m := range methods {
		cfg := acme.DefaultConfig()
		cfg.EdgeServers = 1
		cfg.Fleet.Spec.Clusters = 1
		cfg.Fleet.Spec.DevicesPerCluster = 4
		// Starved devices and aggressive per-round pruning, so the
		// choice of aggregation weights actually changes which header
		// units survive.
		cfg.SamplesPerDevice = 60
		cfg.Phase2Rounds = 3
		cfg.DiscardPerRound = 8
		cfg.Level = acme.C2
		cfg.DataGroups = 2
		cfg.Aggregation = m.method
		cfg.Seed = 7 // identical fleet and shards for every method
		// Lossless entropy coding of the bulk payloads (results unchanged).
		cfg.Wire.Entropy = true

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		res, err := acme.Run(ctx, cfg)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s accuracy %.3f → %.3f (%+.1f points)\n",
			m.name, res.MeanAccuracyCoarse(), res.MeanAccuracyFinal(),
			100*(res.MeanAccuracyFinal()-res.MeanAccuracyCoarse()))
	}
}
