// Multi-exit inference: the extension ACME's related work motivates.
// Attach lightweight exit heads at several backbone depths, train them
// jointly, then sweep the confidence threshold to trade accuracy
// against executed depth (a latency proxy).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"acme/internal/data"
	"acme/internal/multiexit"
	"acme/internal/nn"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	spec := data.CIFAR100Like()
	spec.NumClasses = 20
	spec.NumSuper = 4
	// Overlapping classes so the deeper exits genuinely see more than
	// the shallow ones.
	spec.ClassSep = 0.8
	spec.WithinStd = 1.2
	gen, err := data.NewGenerator(spec)
	if err != nil {
		log.Fatal(err)
	}
	train := gen.Sample(400, nil, rng)
	test := gen.Sample(200, nil, rand.New(rand.NewSource(2)))

	bb, err := nn.NewBackbone(nn.BackboneConfig{
		InputDim: spec.Dim, NumPatches: 4, DModel: 16, NumHeads: 2, Hidden: 24, Depth: 4,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	model, err := multiexit.New(bb, []int{1, 2}, spec.NumClasses, rng)
	if err != nil {
		log.Fatal(err)
	}

	opt := nn.NewScheduledAdam(nn.CosineLR{Max: 3e-3, Min: 3e-4, TotalSteps: 200})
	for epoch := 0; epoch < 6; epoch++ {
		loss, err := model.TrainEpoch(train, opt, 16, true, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: summed-exit loss %.3f\n", epoch, loss)
	}

	fmt.Println("\nearly-exit accuracy vs executed depth:")
	points, err := model.TradeoffCurve(test, []float64{0.0, 0.2, 0.3, 0.4, 0.6, 1.01})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("  threshold %.2f: accuracy %.3f at mean depth %.2f/4 blocks\n",
			p.Threshold, p.Accuracy, p.MeanDepth)
	}
}
