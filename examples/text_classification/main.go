// Text classification: the paper notes ACME "can serve different
// Transformer-based models". This example runs the ACME width story on
// a BERT-style token encoder instead of the vision backbone: train on
// synthetic motif text, accumulate Taylor head/neuron importances, mask
// to half width, and compare size and accuracy — all on the exact same
// block machinery the vision pipeline uses.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"acme/internal/data"
	"acme/internal/nn"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	spec := data.DefaultTextSpec()
	ds, err := data.GenerateText(spec, 400, rng)
	if err != nil {
		log.Fatal(err)
	}
	train, test := data.SplitText(ds, 0.75, rng)

	bb, err := nn.NewTokenBackbone(nn.TokenBackboneConfig{
		VocabSize: spec.VocabSize, SeqLen: spec.SeqLen,
		DModel: 16, NumHeads: 4, Hidden: 32, Depth: 2,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	clf := nn.NewTokenClassifier(bb, spec.NumClasses, rng)

	opt := nn.NewScheduledAdam(nn.CosineLR{Max: 3e-3, Min: 5e-4, TotalSteps: 150})
	for epoch := 0; epoch < 8; epoch++ {
		trainEpoch(clf, train, opt, rng)
	}
	fmt.Printf("full model:   %6d params, test accuracy %.3f\n",
		bb.ActiveParamCount(), accuracy(clf, test))

	// ACME width pruning: Taylor importance, then keep the top half of
	// heads and MLP neurons.
	bb.SetRecordImportance(true)
	for i := 0; i < 100 && i < train.Len(); i++ {
		logits, err := clf.Forward(train.Tokens[i])
		if err != nil {
			log.Fatal(err)
		}
		_, dl := nn.CrossEntropy(logits, train.Y[i])
		clf.Backward(dl)
	}
	bb.SetRecordImportance(false)
	nn.ZeroGrads(clf)
	if err := bb.ScaleWidth(0.5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("half width:   %6d params, test accuracy %.3f (before fine-tune)\n",
		bb.ActiveParamCount(), accuracy(clf, test))

	for epoch := 0; epoch < 3; epoch++ {
		trainEpoch(clf, train, opt, rng)
	}
	fmt.Printf("fine-tuned:   %6d params, test accuracy %.3f\n",
		bb.ActiveParamCount(), accuracy(clf, test))
}

func trainEpoch(clf *nn.TokenClassifier, ds *data.TextDataset, opt nn.Optimizer, rng *rand.Rand) {
	order := rng.Perm(ds.Len())
	for start := 0; start < len(order); start += 16 {
		end := start + 16
		if end > len(order) {
			end = len(order)
		}
		nn.ZeroGrads(clf)
		for _, i := range order[start:end] {
			logits, err := clf.Forward(ds.Tokens[i])
			if err != nil {
				log.Fatal(err)
			}
			_, dl := nn.CrossEntropy(logits, ds.Y[i])
			for j := range dl {
				dl[j] /= float64(end - start)
			}
			clf.Backward(dl)
		}
		opt.Step(clf.Params())
	}
}

func accuracy(clf *nn.TokenClassifier, ds *data.TextDataset) float64 {
	var correct int
	for i := range ds.Tokens {
		logits, err := clf.Forward(ds.Tokens[i])
		if err != nil {
			log.Fatal(err)
		}
		if nn.Argmax(logits) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
