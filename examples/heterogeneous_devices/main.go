// Heterogeneous devices: the Phase-1 story. Three edge clusters with
// very different storage budgets receive differently sized backbones
// from the cloud's Pareto Front Grid — tight budgets get narrow/shallow
// models, loose budgets get the full reference.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"acme"
)

func main() {
	cfg := acme.DefaultConfig()
	cfg.EdgeServers = 3
	cfg.Fleet.Spec.Clusters = 3
	cfg.Fleet.Spec.DevicesPerCluster = 2
	cfg.SamplesPerDevice = 100
	// Storage ladder as fractions of the reference model's parameter
	// count: the first cluster can barely hold a third of the model.
	cfg.StorageFractions = []float64{0.35, 0.6, 1.0}
	cfg.Phase2Rounds = 1
	// Lossless entropy coding of the bulk payloads (results unchanged).
	cfg.Wire.Entropy = true

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	res, err := acme.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Phase 1 — backbones matched to cluster constraints:")
	ids := make([]int, 0, len(res.Assignments))
	for id := range res.Assignments {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := res.Assignments[id]
		fmt.Printf("  edge-%d: width %.2f × depth %d → %.0f params, %.0f J, probe accuracy %.3f\n",
			id, c.W, c.D, c.Size, c.Energy, c.Accuracy)
	}

	fmt.Println("\ndevices then refined their headers locally:")
	reports := append([]acme.DeviceReport(nil), res.Reports...)
	sort.Slice(reports, func(i, j int) bool { return reports[i].DeviceID < reports[j].DeviceID })
	for _, r := range reports {
		fmt.Printf("  device-%d: %d total params, final accuracy %.3f\n",
			r.DeviceID, r.BackboneParams+r.HeaderParams, r.AccuracyFinal)
	}
}
