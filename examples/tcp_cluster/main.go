// TCP cluster: run every ACME role over real localhost sockets — the
// same wire path cmd/acmenode uses across machines — inside one
// process. Each role gets its own TCP listener and its own System
// instance built from the identical config, exactly as separate OS
// processes would.
//
// The sockets are session-supervised: each node keeps one link per
// peer (the dialer announces itself with a JOIN control frame and the
// acceptor multiplexes replies onto the same connection), a dead
// connection is redialed with capped exponential backoff inside Send,
// and Close announces a LEAVE. The run below also enables the
// straggler cutoff: with -quorum/-cutoff semantics an edge combines a
// round once half its cluster has uploaded and the deadline passed,
// instead of pacing at the slowest device — on this healthy loopback
// cluster the generous deadline never fires, so the results match an
// uncut run exactly.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"acme"
)

func main() {
	cfg := acme.DefaultConfig()
	cfg.EdgeServers = 1
	cfg.Fleet.Spec.Clusters = 1
	cfg.Fleet.Spec.DevicesPerCluster = 2
	cfg.SamplesPerDevice = 80
	cfg.Phase2Rounds = 1
	// The compact binary wire format is the default; set it explicitly
	// here because every process of a TCP deployment must agree on it.
	cfg.Wire.Format = "binary"
	// Entropy coding is sender-side: receivers detect entropy frames on
	// the wire, so every process decodes correctly whether or not its
	// own config sets this.
	cfg.Wire.Entropy = true
	cfg.Wire.Quantization = acme.QuantLossless
	// Churn tolerance: combine once 50% of a cluster uploaded and 5s
	// passed — far above a healthy round, so results are untouched, but
	// a wedged device could no longer stall the loop forever.
	cfg.Straggler.Quorum = 0.5
	cfg.Straggler.Deadline = 5 * time.Second

	// Build one system just to enumerate the roles.
	probe, err := acme.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	roles := probe.RoleNames()

	// Start one TCP listener per role on an ephemeral port, then share
	// the full peer table.
	nets := make(map[string]*acme.TCPNetwork, len(roles))
	peers := make(map[string]string, len(roles))
	for _, role := range roles {
		n, err := acme.NewTCPNetwork(role, "127.0.0.1:0", nil)
		if err != nil {
			log.Fatal(err)
		}
		nets[role] = n
		peers[role] = n.Addr()
		defer n.Close()
	}
	// Late-bind the peer tables now that every port is known.
	for _, role := range roles {
		nets[role].SetPeers(peers)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var collected *acme.Result
	errs := make(chan error, len(roles))
	for _, role := range roles {
		role := role
		sys, err := acme.NewSystemWithNetwork(cfg, nets[role])
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sys.RunRole(ctx, role)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", role, err)
				cancel()
				return
			}
			if res != nil {
				mu.Lock()
				collected = res
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}

	fmt.Println("TCP cluster run complete — reports received over sockets:")
	for _, r := range collected.Reports {
		fmt.Printf("  device-%d: accuracy %.3f → %.3f\n", r.DeviceID, r.AccuracyCoarse, r.AccuracyFinal)
	}
	// Each role's TCP node counts the traffic it sent; summing over
	// every role gives the cluster-wide wire volume.
	var wireBytes, rawBytes, msgs int64
	for _, role := range roles {
		st := nets[role].Stats()
		wireBytes += st.TotalBytes()
		rawBytes += st.TotalRawBytes()
		msgs += st.TotalMessages()
	}
	fmt.Printf("cluster wire traffic: %d messages, %d wire bytes, %d in-memory bytes (codec ratio %.2f)\n",
		msgs, wireBytes, rawBytes, float64(rawBytes)/float64(wireBytes))
}
