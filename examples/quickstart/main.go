// Quickstart: run the full ACME pipeline — backbone customization on
// the cloud, header search on the edges, single-loop refinement on the
// devices — on a small synthetic fleet, and print what each device got.
package main

import (
	"context"
	"fmt"
	"log"
	"time"
)

import "acme"

func main() {
	cfg := acme.DefaultConfig()
	cfg.EdgeServers = 2
	cfg.Fleet.Spec.Clusters = 2
	cfg.Fleet.Spec.DevicesPerCluster = 2
	cfg.SamplesPerDevice = 120
	// Entropy-code the bulk payloads: lossless, so results are bitwise
	// identical to a plain-binary run — only the wire bytes shrink.
	cfg.Wire.Entropy = true

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	res, err := acme.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ACME quickstart — customized models per device:")
	for _, r := range res.Reports {
		fmt.Printf("  device-%d (edge-%d): backbone w=%.2f d=%d, accuracy %.3f → %.3f after refinement\n",
			r.DeviceID, r.EdgeID, r.Width, r.Depth, r.AccuracyCoarse, r.AccuracyFinal)
	}
	fmt.Printf("mean accuracy improved from %.3f to %.3f\n",
		res.MeanAccuracyCoarse(), res.MeanAccuracyFinal())
	fmt.Printf("protocol uplink was %.1f%% of a centralized system's\n",
		100*float64(res.UploadBytes)/float64(res.CentralizedUploadBytes))
}
